//! Minimal HTTP/1.1 framing over `std::io` streams.
//!
//! Only what the scenario service needs: request parsing with hard limits
//! (request-line/header size, header count, body size), `Content-Length`
//! bodies, keep-alive semantics, and response writing. No chunked
//! transfer, no multipart, no TLS — the service speaks plain HTTP/1.1 so
//! any client (curl included) can drive it, while the implementation
//! stays pure std per the hermetic-build policy (DESIGN.md §8).

use std::io::{self, BufRead, Write};

/// Hard cap on one request-line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Hard cap on the number of headers per request.
const MAX_HEADERS: usize = 64;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure (including read timeouts) — close the connection.
    Io(io::Error),
    /// The bytes were not a well-formed request — answer 400 and close.
    Malformed(String),
    /// A limit was exceeded — answer 413 and close.
    TooLarge(&'static str),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Should the connection stay open after the response?
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Err(HttpError::Malformed("connection closed mid-line".into()));
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            break;
        }
        buf.extend_from_slice(chunk);
        let len = chunk.len();
        reader.consume(len);
        if buf.len() > MAX_LINE {
            return Err(HttpError::TooLarge("header line too long"));
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    if buf.len() > MAX_LINE {
        return Err(HttpError::TooLarge("header line too long"));
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` on a clean EOF *before the first byte* — the normal
/// end of a keep-alive connection. A caller that wants to idle-poll (e.g.
/// to notice shutdown) should `fill_buf` with a read timeout first and
/// call this only once bytes are available.
///
/// # Errors
///
/// [`HttpError::Malformed`] for protocol violations (answer 400),
/// [`HttpError::TooLarge`] for exceeded limits (answer 413),
/// [`HttpError::Io`] for transport failures (close silently).
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    // Clean-EOF detection: peek before committing to a request.
    if reader.fill_buf()?.is_empty() {
        return Ok(None);
    }
    let request_line = read_line(reader)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing version".into()))?;
    if parts.next().is_some() || !(version == "HTTP/1.1" || version == "HTTP/1.0") {
        return Err(HttpError::Malformed(format!(
            "unsupported request line {request_line:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        keep_alive: version == "HTTP/1.1",
    };
    if let Some(conn) = request.header("connection") {
        match conn.to_ascii_lowercase().as_str() {
            "close" => request.keep_alive = false,
            "keep-alive" => request.keep_alive = true,
            _ => {}
        }
    }
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
        if len > max_body {
            return Err(HttpError::TooLarge("body exceeds the configured limit"));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// Maximum payload of a single chunk in chunked transfer encoding.
const CHUNK_SIZE: usize = 16 * 1024;

/// A response ready to serialise.
#[derive(Debug)]
pub struct Response {
    /// Status code (e.g. 200).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Emit `Retry-After: N` (the 429 backpressure hint).
    pub retry_after: Option<u64>,
    /// Emit `Deprecation: true` (answering on a pre-`/v1` legacy alias).
    pub deprecation: bool,
    /// Serialise the body with chunked transfer encoding instead of
    /// `Content-Length` (streaming endpoints).
    pub chunked: bool,
    /// Emit `Connection: close` and let the caller drop the connection.
    pub close: bool,
}

impl Response {
    /// A response with the given status, content type and body.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            retry_after: None,
            deprecation: false,
            chunked: false,
            close: false,
        }
    }

    /// A structured `{"code","message","retryable"}` JSON error — the one
    /// error shape every endpoint answers with. `retryable` is derived
    /// from the status: timeouts and backpressure (408/429/503/504) are
    /// worth retrying, client and server bugs are not.
    pub fn error(status: u16, code: &str, message: &str) -> Response {
        let retryable = matches!(status, 408 | 429 | 503 | 504);
        Response::new(
            status,
            "application/json",
            format!(
                "{{\"code\":\"{}\",\"message\":\"{}\",\"retryable\":{retryable}}}\n",
                crate::json::escape(code),
                crate::json::escape(message),
            ),
        )
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Response",
        }
    }

    /// Serialises status line, headers and body onto `w` (flushes).
    ///
    /// With `chunked` set the body goes out as chunked transfer encoding
    /// (chunks of at most 16 KiB, closed by a `0\r\n\r\n` terminator);
    /// otherwise as a `Content-Length` body. The payload bytes are
    /// identical either way — chunking is pure framing.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
        )?;
        if self.chunked {
            write!(w, "transfer-encoding: chunked\r\n")?;
        } else {
            write!(w, "content-length: {}\r\n", self.body.len())?;
        }
        if let Some(secs) = self.retry_after {
            write!(w, "retry-after: {secs}\r\n")?;
        }
        if self.deprecation {
            write!(w, "deprecation: true\r\n")?;
        }
        if self.close {
            write!(w, "connection: close\r\n")?;
        }
        w.write_all(b"\r\n")?;
        if self.chunked {
            for chunk in self.body.chunks(CHUNK_SIZE) {
                write!(w, "{:x}\r\n", chunk.len())?;
                w.write_all(chunk)?;
                w.write_all(b"\r\n")?;
            }
            w.write_all(b"0\r\n\r\n")?;
        } else {
            w.write_all(&self.body)?;
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /run?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTT",
        ] {
            assert!(
                matches!(
                    parse(bad),
                    Err(HttpError::Malformed(_)) | Err(HttpError::Io(_))
                ),
                "{:?} should be rejected",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn enforces_limits() {
        let body_too_big = b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        assert!(matches!(parse(body_too_big), Err(HttpError::TooLarge(_))));
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(
            parse(many.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn response_serialisation() {
        let mut resp = Response::new(200, "text/plain", "hi");
        resp.retry_after = Some(2);
        resp.close = true;
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn error_bodies_are_structured_json() {
        let resp = Response::error(429, "queue_full", "admission queue is full");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.reason(), "Too Many Requests");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(
            body,
            "{\"code\":\"queue_full\",\"message\":\"admission queue is full\",\"retryable\":true}\n"
        );
        let resp = Response::error(400, "bad_spec", "x");
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("\"retryable\":false"));
    }

    #[test]
    fn chunked_serialisation_frames_the_same_bytes() {
        let payload = vec![b'x'; CHUNK_SIZE + 5];
        let mut resp = Response::new(200, "application/x-ndjson", payload.clone());
        resp.chunked = true;
        resp.deprecation = true;
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("deprecation: true\r\n"));
        assert!(!text.contains("content-length"));
        // One full 16 KiB chunk, one 5-byte chunk, then the terminator.
        let body = text.split_once("\r\n\r\n").unwrap().1;
        assert!(body.starts_with("4000\r\n"));
        assert!(body.ends_with("5\r\nxxxxx\r\n0\r\n\r\n"));
        let decoded: Vec<u8> = body
            .split("\r\n")
            .scan(true, |is_size, part| {
                let take = if *is_size {
                    None
                } else {
                    Some(part.as_bytes())
                };
                *is_size = !*is_size;
                Some(take)
            })
            .flatten()
            .flat_map(|b| b.iter().copied())
            .collect();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn keep_alive_parses_two_requests_from_one_stream() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&bytes[..]);
        let a = read_request(&mut reader, 64).unwrap().unwrap();
        let b = read_request(&mut reader, 64).unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(read_request(&mut reader, 64).unwrap().is_none());
    }
}
