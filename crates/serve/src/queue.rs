//! Bounded admission queue with wait-free admission.
//!
//! The serving layer mirrors the paper's wait-free design point at the
//! admission boundary: a request is admitted or rejected *immediately* —
//! [`Bounded::try_push`] never blocks on queue space, so no client ever
//! waits behind an unbounded buffer (backpressure surfaces as HTTP 429
//! instead). Only the consuming side blocks: the dispatcher parks in
//! [`Bounded::pop`] until work or shutdown arrives.
//!
//! [`Bounded::close`] flips the queue into drain mode: further pushes are
//! refused, pops keep returning queued items until the queue is empty and
//! only then report exhaustion — exactly the graceful-shutdown semantics
//! the server needs (admitted work always completes).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] refused an item (the item is handed back so
/// the caller can answer the client without cloning).
#[derive(Debug)]
pub enum Rejected<T> {
    /// The queue was at capacity — backpressure (HTTP 429).
    Full(T),
    /// The queue was closed — shutdown in progress (HTTP 503).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer queue with blocking consumption and
/// drain-on-close semantics.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Admits `item` if there is room, without ever waiting for space.
    ///
    /// # Errors
    ///
    /// [`Rejected::Full`] at capacity, [`Rejected::Closed`] after
    /// [`close`](Bounded::close); both return the item.
    pub fn try_push(&self, item: T) -> Result<(), Rejected<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(Rejected::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(Rejected::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: subsequent pushes are refused, pops drain what is
    /// already queued. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Items currently queued (a snapshot — the `/metrics` queue-depth
    /// gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_capacity_then_rejects_immediately() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(Rejected::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed by pop is reusable");
    }

    #[test]
    fn close_drains_then_reports_exhaustion() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        q.close(); // idempotent
        match q.try_push("c") {
            Err(Rejected::Closed(item)) => assert_eq!(item, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push_and_close_wakes_sleepers() {
        let q = Arc::new(Bounded::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let first = q.pop();
                let second = q.pop();
                (first, second)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7u64).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        let (first, second) = consumer.join().unwrap();
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert!(matches!(q.try_push(2), Err(Rejected::Full(2))));
    }
}
