//! Bounded admission queue with wait-free admission.
//!
//! The serving layer mirrors the paper's wait-free design point at the
//! admission boundary: a request is admitted or rejected *immediately* —
//! [`Bounded::try_push`] never blocks on queue space, so no client ever
//! waits behind an unbounded buffer (backpressure surfaces as HTTP 429
//! instead). Only the consuming side blocks: the dispatcher parks in
//! [`Bounded::pop`] until work or shutdown arrives.
//!
//! [`Bounded::close`] flips the queue into drain mode: further pushes are
//! refused, pops keep returning queued items until the queue is empty and
//! only then report exhaustion — exactly the graceful-shutdown semantics
//! the server needs (admitted work always completes).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] refused an item (the item is handed back so
/// the caller can answer the client without cloning).
#[derive(Debug)]
pub enum Rejected<T> {
    /// The queue was at capacity — backpressure (HTTP 429).
    Full(T),
    /// The queue was closed — shutdown in progress (HTTP 503).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer queue with blocking consumption and
/// drain-on-close semantics.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Admits `item` if there is room, without ever waiting for space.
    ///
    /// # Errors
    ///
    /// [`Rejected::Full`] at capacity, [`Rejected::Closed`] after
    /// [`close`](Bounded::close); both return the item.
    pub fn try_push(&self, item: T) -> Result<(), Rejected<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(Rejected::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(Rejected::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: subsequent pushes are refused, pops drain what is
    /// already queued. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Items currently queued (a snapshot — the `/metrics` queue-depth
    /// gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// N independent [`Bounded`] lanes behind one admission front: producers
/// rotate across lanes with an atomic cursor (the [`WorkerPool`] claim
/// idiom), each dispatcher thread drains exactly one lane. Sharding keeps
/// admission wait-free while removing the single-queue serialization the
/// one-dispatcher design had — under load, producers contend on N mutexes
/// instead of one, and a slow job stalls only its own lane.
///
/// [`WorkerPool`]: gather_bench::pool::WorkerPool
pub struct Sharded<T> {
    lanes: Vec<Bounded<T>>,
    cursor: std::sync::atomic::AtomicUsize,
}

impl<T> Sharded<T> {
    /// `lanes` lanes (clamped to ≥ 1) sharing `capacity` total slots; each
    /// lane gets `ceil(capacity / lanes)` so the configured total is a
    /// floor, never undercut by rounding.
    pub fn new(lanes: usize, capacity: usize) -> Sharded<T> {
        let lanes = lanes.max(1);
        let per_lane = capacity.max(1).div_ceil(lanes);
        Sharded {
            lanes: (0..lanes).map(|_| Bounded::new(per_lane)).collect(),
            cursor: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of lanes (== dispatcher threads to spawn).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Admits `item` to the next lane in rotation, falling through to the
    /// other lanes if that one is full. Wait-free like
    /// [`Bounded::try_push`]: refused only when *every* lane is full (or
    /// the queue is closed).
    ///
    /// # Errors
    ///
    /// [`Rejected::Full`] when all lanes are at capacity,
    /// [`Rejected::Closed`] after [`close`](Sharded::close).
    pub fn try_push(&self, item: T) -> Result<(), Rejected<T>> {
        let start = self
            .cursor
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let n = self.lanes.len();
        let mut item = item;
        for i in 0..n {
            match self.lanes[(start + i) % n].try_push(item) {
                Ok(()) => return Ok(()),
                Err(Rejected::Closed(it)) => return Err(Rejected::Closed(it)),
                Err(Rejected::Full(it)) => item = it,
            }
        }
        Err(Rejected::Full(item))
    }

    /// Blocks on lane `lane` until an item or close-and-drained; the
    /// per-dispatcher consumption side of [`Bounded::pop`].
    pub fn pop(&self, lane: usize) -> Option<T> {
        self.lanes[lane].pop()
    }

    /// Closes every lane (drain-on-close semantics per lane). Idempotent.
    pub fn close(&self) {
        for lane in &self.lanes {
            lane.close();
        }
    }

    /// Items queued across all lanes (the `/metrics` depth gauge).
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Bounded::len).sum()
    }

    /// Is every lane empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across lanes (≥ the constructor's `capacity`).
    pub fn capacity(&self) -> usize {
        self.lanes.iter().map(Bounded::capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_capacity_then_rejects_immediately() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(Rejected::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed by pop is reusable");
    }

    #[test]
    fn close_drains_then_reports_exhaustion() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        q.close(); // idempotent
        match q.try_push("c") {
            Err(Rejected::Closed(item)) => assert_eq!(item, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push_and_close_wakes_sleepers() {
        let q = Arc::new(Bounded::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let first = q.pop();
                let second = q.pop();
                (first, second)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7u64).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        let (first, second) = consumer.join().unwrap();
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert!(matches!(q.try_push(2), Err(Rejected::Full(2))));
    }

    #[test]
    fn sharded_splits_capacity_and_rotates() {
        let q: Sharded<u32> = Sharded::new(4, 10);
        assert_eq!(q.lanes(), 4);
        // ceil(10/4) = 3 per lane.
        assert_eq!(q.capacity(), 12);
        for i in 0..12 {
            assert!(q.try_push(i).is_ok(), "push {i} within total capacity");
        }
        assert!(matches!(q.try_push(99), Err(Rejected::Full(99))));
        // Rotation spread the items evenly: every lane holds exactly 3.
        for lane in 0..4 {
            let mut got = 0;
            while let Some(_item) = {
                // Drain without blocking: each lane is full, so 3 pops
                // succeed; close afterwards makes further pops return None.
                if got < 3 {
                    q.pop(lane)
                } else {
                    None
                }
            } {
                got += 1;
            }
            assert_eq!(got, 3, "lane {lane} should hold its even share");
        }
    }

    #[test]
    fn sharded_falls_through_full_lanes() {
        let q: Sharded<u32> = Sharded::new(2, 2); // 1 slot per lane
        q.try_push(1).unwrap(); // lane 0
        q.try_push(2).unwrap(); // lane 1
        assert_eq!(q.len(), 2);
        // Free lane 1 only; the rotating cursor points at lane 0 next, but
        // push must fall through to the lane with room.
        assert_eq!(q.pop(1), Some(2));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(1), Some(3));
    }

    #[test]
    fn sharded_close_is_closed_on_every_lane() {
        let q: Sharded<&str> = Sharded::new(3, 6);
        q.try_push("a").unwrap();
        q.close();
        assert!(matches!(q.try_push("b"), Err(Rejected::Closed("b"))));
        // Drain-on-close still holds per lane.
        let drained: Vec<_> = (0..3).filter_map(|lane| q.pop(lane)).collect();
        assert_eq!(drained, vec!["a"]);
        for lane in 0..3 {
            assert_eq!(q.pop(lane), None);
        }
    }

    #[test]
    fn sharded_stress_no_lost_or_duplicated_jobs() {
        // 8 producers push 500 tagged jobs each across 4 lanes while 4
        // consumers drain concurrently; every job must arrive exactly once.
        const PRODUCERS: u64 = 8;
        const PER_PRODUCER: u64 = 500;
        let q: Arc<Sharded<u64>> = Arc::new(Sharded::new(4, 64));
        let consumers: Vec<_> = (0..4)
            .map(|lane| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(job) = q.pop(lane) {
                        seen.push(job);
                    }
                    seen
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let job = p * PER_PRODUCER + i;
                        // Spin on Full: the stress point is correctness
                        // under contention, not admission policy.
                        loop {
                            match q.try_push(job) {
                                Ok(()) => break,
                                Err(Rejected::Full(_)) => std::thread::yield_now(),
                                Err(Rejected::Closed(_)) => panic!("closed mid-produce"),
                            }
                        }
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(
            all, expect,
            "every job exactly once, none lost or duplicated"
        );
    }
}
