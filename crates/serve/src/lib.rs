//! gather-serve: a pure-std batch scenario service over the simulator.
//!
//! Exposes the crash-fault gathering simulator (`gather-sim` +
//! `gather-workloads`, fanned out over `gather-bench`'s persistent
//! [`WorkerPool`]) as a multi-threaded TCP service speaking minimal
//! HTTP/1.1. The design mirrors the paper's wait-free stance at the
//! serving layer: admission is immediate-or-rejected (bounded queue,
//! 429 + `Retry-After` backpressure), never unbounded buffering, and
//! graceful shutdown drains every admitted job before the last thread
//! exits.
//!
//! Module map:
//!
//! * [`json`] — dependency-free JSON value parser used by the request path;
//! * [`http`] — HTTP/1.1 request framing and response writing with limits;
//! * [`spec`] — the scenario-spec request model, strictly validated and
//!   mapped onto `gather-workloads` / `gather-bench::factory` names;
//! * [`queue`] — the bounded wait-free-admission queue;
//! * [`metrics`] — server counters, run aggregates and the `/metrics`
//!   text exposition;
//! * [`server`] — acceptor / handlers / dispatcher and shutdown sequencing;
//! * [`client`] — a tiny blocking client shared by the bench, the smoke
//!   gate and the tests.
//!
//! Determinism contract: `POST /run` responses are byte-identical to
//! serialising the same scenario specs run in-process (see
//! `crates/serve/tests/service_roundtrip.rs` and the `b8_service` bench,
//! which both assert it).
//!
//! [`WorkerPool`]: gather_bench::pool::WorkerPool

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod spec;

pub use client::{Client, ClientResponse};
pub use server::{ServeConfig, Server, TRACE_MAX_ROUNDS};
pub use spec::{RunRequest, ScenarioSpec};
