//! gather-serve: a pure-std batch scenario service over the simulator.
//!
//! Exposes the crash-fault gathering simulator (`gather-sim` +
//! `gather-workloads`, fanned out over `gather-bench`'s persistent
//! [`WorkerPool`]) as a multi-threaded TCP service speaking minimal
//! HTTP/1.1. The design mirrors the paper's wait-free stance at the
//! serving layer: admission is immediate-or-rejected (bounded queue,
//! 429 + `Retry-After` backpressure), never unbounded buffering, and
//! graceful shutdown drains every admitted job before the last thread
//! exits.
//!
//! Two serving engines share one routing/admission core: a
//! readiness-driven sharded epoll event loop (Linux, the default) and a
//! portable thread-per-connection engine (everywhere else, or with
//! `GATHER_NO_EPOLL=1`). Scenario execution is deterministic, so
//! completed payloads are cached byte-exact under canonical spec keys
//! and repeated requests are answered at admission time.
//!
//! Module map:
//!
//! * [`json`] — dependency-free JSON value parser used by the request path;
//! * [`http`] — HTTP/1.1 request framing (blocking and incremental) and
//!   response writing with limits;
//! * [`spec`] — the scenario-spec request model, strictly validated and
//!   mapped onto `gather-workloads` / `gather-bench::factory` names;
//! * [`queue`] — the bounded wait-free-admission queue and its sharded
//!   multi-lane variant;
//! * [`cache`] — the deterministic result cache (canonical FNV spec keys,
//!   lock-striped LRU shards);
//! * [`metrics`] — server counters, run aggregates and the `/metrics`
//!   text exposition;
//! * [`server`] — acceptor / engines / dispatcher lanes and shutdown
//!   sequencing;
//! * [`batch_api`] — `POST /v1/batch`, the amortised mega-batch endpoint
//!   over the columnar `BatchEngine` lanes;
//! * [`event_loop`] — the epoll engine (Linux only);
//! * [`client`] — a tiny blocking client shared by the bench, the smoke
//!   gate and the tests.
//!
//! Determinism contract: `POST /v1/run` (and `/v1/batch`) responses are
//! byte-identical to serialising the same scenario specs run in-process,
//! whether computed or served from the cache (see
//! `crates/serve/tests/service_roundtrip.rs`,
//! `crates/serve/tests/service_cache.rs` and the `b8_service` bench,
//! which all assert it).
//!
//! [`WorkerPool`]: gather_bench::pool::WorkerPool

pub mod batch_api;
pub mod cache;
pub mod client;
#[cfg(target_os = "linux")]
pub mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod spec;

pub use client::{Client, ClientResponse};
pub use server::{ServeConfig, Server, TRACE_MAX_ROUNDS};
pub use spec::{RunRequest, ScenarioSpec};
