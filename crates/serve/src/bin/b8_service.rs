//! B8 — scenario-service load generation.
//!
//! Starts an in-process [`Server`] and drives it over real TCP:
//!
//! 1. **Bit-identity gate** (always on, also the point of the exercise):
//!    for every configuration class B/M/L1W/L2W/QR/A, the bytes served by
//!    `POST /v1/run` must equal the bytes of the same spec run in-process
//!    and serialised with `RunMetrics::to_jsonl` — the service adds
//!    transport, not behaviour.
//! 2. **Cold capacity probe**: sequential unique-seed requests (every one
//!    a cache miss) measure the compute-bound service rate μ, warm-up
//!    excluded.
//! 3. **Open-loop sweep**: offered rates 0.5×/1×/2×/4× μ with unique
//!    seeds, one client thread per request fired at its scheduled arrival
//!    time regardless of completions (open loop — arrivals never slow
//!    down because the server is struggling). A warm-up phase runs before
//!    the sweep and is excluded from every statistic. Records throughput,
//!    p50/p99 latency and the 429 rejection rate per offered rate: the
//!    backpressure curve.
//! 4. **Cache-hit sweep**: closed-loop clients hammering one warmed spec
//!    over keep-alive connections — the readiness event loop plus the
//!    deterministic result cache serving at transport speed.
//! 5. **`/v1/batch` amortisation curve**: scenarios/second for batch
//!    sizes 1..256, cold (columnar `BatchEngine` lanes) and hot (cached).
//!
//! The server runs with a deliberately small admission queue so the sweep
//! exercises the 429 path at super-capacity rates instead of buffering
//! its way through.
//!
//! Writes `BENCH_b8_service.json` (committed record) in full mode; with
//! `--quick` or `--baseline` the fresh JSON goes to `--out` and the
//! committed record is left untouched. `--smoke` runs the check.sh
//! service gate (run + trace + batch + 400 + metrics + shutdown);
//! `--cache-smoke` runs the cache/event-loop gate (hit byte-identity,
//! headers, hit-rate floor) and auto-skips with a reason where the epoll
//! engine is unavailable.

use gather_bench::report;
use gather_bench::runner::percentile;
use gather_bench::Args;
use gather_config::Class;
use gather_serve::{Client, ScenarioSpec, ServeConfig, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The sweep's unit of work: a 16-robot scatter under the δ-motion
/// adversary with a tiny δ cannot gather within 50 rounds, so every
/// request burns exactly its round budget — a deterministic service time
/// that does not depend on how the sweep interleaves. `seed` varies per
/// request wherever the *compute* path is the thing being measured, so
/// the result cache cannot short-circuit it.
fn load_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        workload: "scatter".to_string(),
        class: None,
        n: 16,
        seed,
        delta: 0.001,
        motion: "delta",
        max_rounds: 50,
        ..ScenarioSpec::default()
    }
}

fn bench_server(queue_capacity: usize) -> Server {
    Server::start(ServeConfig {
        queue_capacity,
        ..ServeConfig::default()
    })
    .expect("start in-process server")
}

/// Gate 1: served bytes == in-process bytes, for all six classes.
fn bit_identity(addr: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let mut client = Client::connect(addr).expect("connect");
    for class in Class::all() {
        let spec = ScenarioSpec {
            class: Some(class),
            seed: 7,
            faults: 1,
            max_rounds: 3_000,
            ..ScenarioSpec::default()
        };
        let local = format!(
            "{}\n",
            spec.to_scenario().expect("spec maps").run().to_jsonl()
        );
        let served = client.post_run(&spec.to_json()).expect("POST /run");
        if served.status != 200 {
            failures.push(format!(
                "class {}: status {} ({})",
                class.short_name(),
                served.status,
                served.text().trim()
            ));
            continue;
        }
        if served.body != local.as_bytes() {
            failures.push(format!(
                "class {}: served bytes differ from in-process run\n  served: {}\n  local:  {}",
                class.short_name(),
                served.text().trim(),
                local.trim()
            ));
        } else {
            println!(
                "  class {:<3} bit-identical ({} bytes)",
                class.short_name(),
                served.body.len()
            );
        }
    }
    failures
}

/// Gate 2: sequential unique-seed requests → compute service rate μ in
/// requests/second. Warm-up requests are excluded from the measurement.
fn measure_capacity(addr: &str, probes: usize) -> f64 {
    let mut client = Client::connect(addr).expect("connect");
    // Warm-up: the first requests pay thread-local engine construction
    // on each dispatcher lane and pool worker.
    for seed in 0..4 {
        assert_eq!(
            client
                .post_run(&load_spec(90_000 + seed).to_json())
                .expect("warm-up")
                .status,
            200
        );
    }
    let started = Instant::now();
    for seed in 0..probes as u64 {
        let body = load_spec(91_000 + seed).to_json();
        assert_eq!(client.post_run(&body).expect("probe").status, 200);
    }
    probes as f64 / started.elapsed().as_secs_f64()
}

struct SweepRow {
    offered_rps: f64,
    achieved_rps: f64,
    requests: usize,
    completed: usize,
    rejected: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// One open-loop run: `requests` arrivals at `offered_rps`, one thread
/// per arrival so a slow server cannot slow the arrival process down.
/// Seeds are unique per arrival (offset by `seed_base`), so every
/// accepted request is a genuine compute job.
fn open_loop(addr: &str, offered_rps: f64, requests: usize, seed_base: u64) -> SweepRow {
    let start = Instant::now() + Duration::from_millis(50);
    let completed = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let errored = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..requests)
        .map(|i| {
            let addr = addr.to_string();
            let body = load_spec(seed_base + i as u64).to_json();
            let completed = Arc::clone(&completed);
            let rejected = Arc::clone(&rejected);
            let errored = Arc::clone(&errored);
            std::thread::spawn(move || -> Option<f64> {
                let due = start + Duration::from_secs_f64(i as f64 / offered_rps);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let sent = Instant::now();
                let response = Client::connect(&addr).and_then(|mut c| c.post_run(&body));
                match response {
                    Ok(r) if r.status == 200 => {
                        completed.fetch_add(1, Ordering::Relaxed);
                        Some(sent.elapsed().as_secs_f64() * 1000.0)
                    }
                    Ok(r) if r.status == 429 => {
                        assert_eq!(
                            r.header("retry-after"),
                            Some("1"),
                            "429 must carry Retry-After"
                        );
                        rejected.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                    Ok(r) => {
                        eprintln!("unexpected status {} ({})", r.status, r.text().trim());
                        errored.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                    Err(e) => {
                        eprintln!("transport error: {e}");
                        errored.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .filter_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = (Instant::now() - start).as_secs_f64();
    latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    assert_eq!(
        errored.load(Ordering::Relaxed),
        0,
        "open-loop clients saw non-200/429 responses"
    );
    let completed = completed.load(Ordering::Relaxed) as usize;
    SweepRow {
        offered_rps,
        achieved_rps: completed as f64 / elapsed,
        requests,
        completed,
        rejected: rejected.load(Ordering::Relaxed) as usize,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

struct HitRow {
    clients: usize,
    requests: usize,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Closed-loop cache-hit serving: `clients` keep-alive connections each
/// issuing `per_client` requests for one already-warmed spec. Every
/// response is asserted bit-identical to the expected payload — the rate
/// is only meaningful if the bytes are right.
fn cache_hit_sweep(addr: &str, clients: usize, per_client: usize, expected: &[u8]) -> HitRow {
    let body = Arc::new(load_spec(70_000).to_json());
    let expected = Arc::new(expected.to_vec());
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let body = Arc::clone(&body);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || -> Vec<f64> {
                let mut client = Client::connect(&addr).expect("connect");
                let mut latencies = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let sent = Instant::now();
                    let response = client.post_run(&body).expect("cache-hit request");
                    assert_eq!(response.status, 200, "{}", response.text());
                    assert_eq!(
                        response.body, *expected,
                        "cache-hit payload must stay bit-identical under load"
                    );
                    latencies.push(sent.elapsed().as_secs_f64() * 1000.0);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = clients * per_client;
    HitRow {
        clients,
        requests,
        rps: requests as f64 / elapsed,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

struct BatchRow {
    size: usize,
    cold_scen_per_sec: f64,
    hot_rps: f64,
}

/// `/v1/batch` amortisation: one mega-batch of `size` unique scenarios,
/// timed cold (columnar lanes) and hot (all-hit, answered at admission).
fn batch_curve(addr: &str, size: usize, seed_base: u64) -> BatchRow {
    let mut client = Client::connect(addr).expect("connect");
    let body = format!(
        "{{\"scenarios\":[{}]}}",
        (0..size as u64)
            .map(|i| load_spec(seed_base + i).to_json())
            .collect::<Vec<_>>()
            .join(",")
    );
    let started = Instant::now();
    let cold = client.post_batch(&body).expect("cold batch");
    let cold_secs = started.elapsed().as_secs_f64();
    assert_eq!(cold.status, 200, "{}", cold.text());

    // Hot: the whole batch is in the cache now; measure repeated
    // all-hit requests (at least 20) for a stable rate.
    let reps = 20.max(2_000 / size);
    let started = Instant::now();
    for _ in 0..reps {
        let hot = client.post_batch(&body).expect("hot batch");
        assert_eq!(hot.status, 200);
        assert_eq!(hot.body, cold.body, "hot batch must be bit-identical");
    }
    let hot_secs = started.elapsed().as_secs_f64();
    BatchRow {
        size,
        cold_scen_per_sec: size as f64 / cold_secs,
        hot_rps: reps as f64 / hot_secs,
    }
}

fn smoke() {
    let server = Server::start(ServeConfig {
        queue_capacity: 4,
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.addr();
    let mut client = Client::connect(&addr).expect("connect");

    let health = client.get("/v1/healthz").expect("GET /v1/healthz");
    assert_eq!(health.status, 200, "healthz: {}", health.text());

    // One real scenario request, checked against the in-process run.
    let spec = ScenarioSpec {
        seed: 3,
        max_rounds: 2_000,
        ..ScenarioSpec::default()
    };
    let expected = format!("{}\n", spec.to_scenario().expect("spec").run().to_jsonl());
    let run = client.post_run(&spec.to_json()).expect("POST /run");
    assert_eq!(run.status, 200, "run: {}", run.text());
    assert_eq!(
        run.body,
        expected.as_bytes(),
        "served bytes must match the in-process run"
    );

    // The streamed document must be the spec's trace/v2 header plus the
    // in-process trace, byte for byte — via both wire forms.
    let traced = format!(
        "{}{}",
        spec.trace_header(),
        spec.to_scenario().expect("spec").run_traced().1
    );
    let trace = client
        .get_trace("seed=3&max_rounds=2000")
        .expect("GET /v1/trace");
    assert_eq!(trace.status, 200, "trace: {}", trace.text());
    assert_eq!(
        trace.body,
        traced.as_bytes(),
        "streamed trace must match the in-process trace"
    );
    assert_eq!(
        trace.header("deprecation"),
        Some("true"),
        "query-param traces are deprecated"
    );
    let posted = client.post_trace(&spec.to_json()).expect("POST /v1/trace");
    assert_eq!(posted.status, 200, "trace: {}", posted.text());
    assert_eq!(
        posted.body, trace.body,
        "POST /v1/trace must serve the same bytes as the deprecated GET"
    );

    // A two-scenario mega-batch exercises the worker pool and the
    // columnar lanes (single-scenario jobs run inline on a dispatcher).
    let spec_b = ScenarioSpec {
        seed: 4,
        max_rounds: 2_000,
        ..ScenarioSpec::default()
    };
    let batch_body = format!(
        "{{\"scenarios\":[{},{}]}}",
        spec.to_json(),
        spec_b.to_json()
    );
    let expected_batch = format!(
        "{}{}\n",
        expected,
        spec_b.to_scenario().expect("spec").run().to_jsonl()
    );
    let batch = client.post_batch(&batch_body).expect("POST /v1/batch");
    assert_eq!(batch.status, 200, "batch: {}", batch.text());
    assert_eq!(
        batch.body,
        expected_batch.as_bytes(),
        "batched bytes must match the in-process runs in order"
    );

    // One malformed request must be a 400, not a hang or a 500.
    let bad = client.post_run("{\"classs\":\"QR\"}").expect("POST bad");
    assert_eq!(bad.status, 400, "malformed spec: {}", bad.text());
    assert!(bad.text().contains("unknown spec field"), "{}", bad.text());
    assert!(
        bad.text().contains("\"code\":\"bad_spec\""),
        "errors are structured JSON: {}",
        bad.text()
    );

    // The scrape must reflect the requests on the same keep-alive
    // connection: run + GET trace + batch admitted (the batch's seed-3
    // scenario is served from cache inside the batch, which still
    // admits because seed 4 is a miss; the POST trace is an all-hit
    // answered at admission, so it completes without being accepted),
    // 4 completed, 3 scenarios executed in total (run + trace + the
    // batch's one miss).
    let metrics = client.get("/v1/metrics").expect("GET /v1/metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    for needle in [
        "gather_requests_accepted_total 3\n",
        "gather_requests_completed_total 4\n",
        "gather_requests_rejected_malformed_total 1\n",
        "gather_scenarios_run_total 3\n",
        "gather_queue_capacity 4\n",
        "gather_request_phase_execute_ns_count 3\n",
        "gather_pool_job_run_time_ns_count",
        "gather_cache_misses_total",
    ] {
        assert!(text.contains(needle), "metrics missing {needle:?}:\n{text}");
    }

    // Graceful shutdown: drains, joins, and the port stops answering.
    let engine = server.engine();
    server.shutdown();
    assert!(
        Client::connect(&addr)
            .and_then(|mut c| c.get("/v1/healthz"))
            .is_err(),
        "server still answering after shutdown"
    );
    println!("b8 smoke: OK (run + trace + batch + 400 + metrics + shutdown; engine={engine})");
}

/// The `serve-cache-smoke` check.sh gate: cache-hit bit-identity, cache
/// headers, and a minimum hit-rate on a repeated-probe run — asserted on
/// the epoll engine, auto-skipped (with the reason) where that engine is
/// unavailable so the gate stays green on non-Linux hosts.
fn cache_smoke() {
    let server = Server::start(ServeConfig::default()).expect("start server");
    if server.engine() != "epoll" {
        println!(
            "b8 cache-smoke: SKIP (engine is {:?} — epoll event loop unavailable on this host \
             or disabled via GATHER_NO_EPOLL)",
            server.engine()
        );
        server.shutdown();
        return;
    }
    let addr = server.addr();
    let mut client = Client::connect(&addr).expect("connect");

    // Cold → hot byte-identity with disposition headers.
    let spec = load_spec(60_000);
    let expected = format!("{}\n", spec.to_scenario().expect("spec").run().to_jsonl());
    let cold = client.post_run(&spec.to_json()).expect("cold run");
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("x-gather-cache"), Some("miss"), "cold miss");
    assert_eq!(cold.body, expected.as_bytes(), "cold bytes");
    let hot = client.post_run(&spec.to_json()).expect("hot run");
    assert_eq!(hot.status, 200);
    assert_eq!(hot.header("x-gather-cache"), Some("hit"), "hot hit");
    assert!(hot.header("age").is_some(), "hits carry Age");
    assert_eq!(hot.body, expected.as_bytes(), "hot bytes == cold bytes");

    // A ~200-request probe over 8 specs: after the 8 cold misses,
    // everything must be served from cache.
    let specs: Vec<String> = (0..8).map(|i| load_spec(61_000 + i).to_json()).collect();
    for round in 0..25 {
        for body in &specs {
            let r = client.post_run(body).expect("probe");
            assert_eq!(r.status, 200);
            if round > 0 {
                assert_eq!(r.header("x-gather-cache"), Some("hit"));
            }
        }
    }
    let counters = server.cache_counters();
    let hit_rate = counters.hit_ratio();
    assert!(
        hit_rate >= 0.9,
        "cache hit-rate floor: got {hit_rate:.3} ({counters:?})"
    );

    // /v1/batch identity through the same cache.
    let batch_body = format!("{{\"scenarios\":[{}]}}", specs.join(","));
    let batched = client.post_batch(&batch_body).expect("batch");
    assert_eq!(batched.status, 200, "{}", batched.text());
    assert_eq!(
        batched.header("x-gather-cache"),
        Some("hit"),
        "a fully warmed batch is answered at admission"
    );
    let in_process: String = (0..8)
        .map(|i| {
            format!(
                "{}\n",
                load_spec(61_000 + i)
                    .to_scenario()
                    .expect("spec")
                    .run()
                    .to_jsonl()
            )
        })
        .collect();
    assert_eq!(
        batched.body,
        in_process.as_bytes(),
        "batched cache hits must be the in-process bytes"
    );

    server.shutdown();
    println!(
        "b8 cache-smoke: OK (cold/hot bit-identity, headers, hit-rate {hit_rate:.3}, \
         /v1/batch identity; engine=epoll)"
    );
}

fn f(x: f64, places: usize) -> String {
    format!("{x:.places$}")
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--cache-smoke") {
        cache_smoke();
        return;
    }
    let args = Args::parse();
    let mut failures: Vec<String> = Vec::new();

    // Small queue on purpose: the sweep should hit the 429 path well
    // before memory does.
    let server = bench_server(8);
    let addr = server.addr();
    let engine = server.engine();

    println!("B8 — scenario service over TCP ({addr}, engine={engine})\n");
    println!("bit-identity across configuration classes:");
    let identity_failures = bit_identity(&addr);
    let bit_identical = identity_failures.is_empty();
    failures.extend(identity_failures);

    let probes = if args.quick { 8 } else { 32 };
    let capacity = measure_capacity(&addr, probes);
    println!(
        "\ncold capacity: {capacity:.1} req/s (closed-loop sequential, {probes} unique-seed \
         probes, warm-up excluded)"
    );

    let per_rate = if args.quick { 40 } else { 200 };
    let mut rows = Vec::new();
    for (i, factor) in [0.5, 1.0, 2.0, 4.0].into_iter().enumerate() {
        rows.push(open_loop(
            &addr,
            factor * capacity,
            per_rate,
            10_000 * (i as u64 + 1),
        ));
    }

    println!("\nopen-loop sweep ({per_rate} unique-seed requests per rate, queue capacity 8):\n");
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "offered r/s", "achieved r/s", "completed", "rejected", "reject %", "p50 ms", "p99 ms"
    );
    for row in &rows {
        println!(
            "{:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9}",
            f(row.offered_rps, 1),
            f(row.achieved_rps, 1),
            row.completed,
            row.rejected,
            f(100.0 * row.rejected as f64 / row.requests as f64, 1),
            f(row.p50_ms, 1),
            f(row.p99_ms, 1),
        );
        if row.completed + row.rejected != row.requests {
            failures.push(format!(
                "open loop at {:.1} r/s: {} + {} != {} (lost requests)",
                row.offered_rps, row.completed, row.rejected, row.requests
            ));
        }
    }

    // Cache-hit serving: warm one spec, then closed-loop clients.
    let warm_body = load_spec(70_000).to_json();
    let warm = Client::connect(&addr)
        .and_then(|mut c| c.post_run(&warm_body))
        .expect("warm the cache");
    assert_eq!(warm.status, 200, "{}", warm.text());
    let per_client = if args.quick { 200 } else { 500 };
    let client_counts: &[usize] = if args.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    let hit_rows: Vec<HitRow> = client_counts
        .iter()
        .map(|&clients| cache_hit_sweep(&addr, clients, per_client, &warm.body))
        .collect();
    println!("\ncache-hit closed-loop sweep ({per_client} requests per client, keep-alive):\n");
    println!(
        "{:>8} {:>10} {:>12} {:>9} {:>9}",
        "clients", "requests", "achieved r/s", "p50 ms", "p99 ms"
    );
    for row in &hit_rows {
        println!(
            "{:>8} {:>10} {:>12} {:>9} {:>9}",
            row.clients,
            row.requests,
            f(row.rps, 1),
            f(row.p50_ms, 2),
            f(row.p99_ms, 2),
        );
    }
    let peak_hit_rps = hit_rows.iter().map(|r| r.rps).fold(0.0, f64::max);
    if peak_hit_rps < 2_870.0 {
        failures.push(format!(
            "cache-hit serving peaked at {peak_hit_rps:.0} req/s — below the 2870 req/s floor \
             (10x the pre-event-loop record)"
        ));
    }

    // /v1/batch amortisation curve.
    let batch_sizes: &[usize] = if args.quick {
        &[1, 8, 32]
    } else {
        &[1, 8, 64, 256]
    };
    let batch_rows: Vec<BatchRow> = batch_sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| batch_curve(&addr, size, 80_000 + 1_000 * i as u64))
        .collect();
    println!("\n/v1/batch amortisation (cold = columnar lanes, hot = all-hit):\n");
    println!("{:>6} {:>16} {:>14}", "size", "cold scen/s", "hot req/s");
    for row in &batch_rows {
        println!(
            "{:>6} {:>16} {:>14}",
            row.size,
            f(row.cold_scen_per_sec, 1),
            f(row.hot_rps, 1),
        );
    }

    let scrape = Client::connect(&addr)
        .and_then(|mut c| c.get("/v1/metrics"))
        .expect("final scrape");
    assert_eq!(scrape.status, 200);
    let cache_counters = server.cache_counters();
    server.shutdown();

    let mut json = format!(
        "{{\n  \"bench\": \"b8_service\",\n  \"engine\": \"{engine}\",\n  \
         \"bit_identical_across_classes\": {bit_identical},\n  \
         \"capacity_req_per_sec\": {capacity:.1},\n  \"queue_capacity\": 8,\n  \
         \"requests_per_rate\": {per_rate},\n  \"warmup_excluded\": true,\n  \
         \"open_loop\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \"completed\": {}, \"rejected\": {}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}{}\n",
            row.offered_rps,
            row.achieved_rps,
            row.completed,
            row.rejected,
            row.p50_ms,
            row.p99_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"cache_hit_sweep\": [\n");
    for (i, row) in hit_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"achieved_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            row.clients,
            row.requests,
            row.rps,
            row.p50_ms,
            row.p99_ms,
            if i + 1 < hit_rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"cache_hit_peak_rps\": {peak_hit_rps:.1},\n  \"batch_curve\": [\n"
    ));
    for (i, row) in batch_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"size\": {}, \"cold_scenarios_per_sec\": {:.1}, \"hot_requests_per_sec\": {:.1}}}{}\n",
            row.size,
            row.cold_scen_per_sec,
            row.hot_rps,
            if i + 1 < batch_rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_ratio\": {:.4}}}\n}}\n",
        cache_counters.hits,
        cache_counters.misses,
        cache_counters.evictions,
        cache_counters.hit_ratio()
    ));

    println!();
    report::emit_record(
        "b8_service",
        &json,
        &args.out_dir,
        args.quick,
        args.baseline.is_some(),
    );
    report::fail_if_any("B8", &failures);
}
