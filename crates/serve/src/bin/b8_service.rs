//! B8 — scenario-service load generation.
//!
//! Starts an in-process [`Server`] and drives it over real TCP:
//!
//! 1. **Bit-identity gate** (always on, also the point of the exercise):
//!    for every configuration class B/M/L1W/L2W/QR/A, the bytes served by
//!    `POST /v1/run` must equal the bytes of the same spec run in-process
//!    and serialised with `RunMetrics::to_jsonl` — the service adds
//!    transport, not behaviour.
//! 2. **Capacity probe**: sequential requests measure the service rate μ.
//! 3. **Open-loop sweep**: offered rates 0.5×/1×/2×/4× μ, one client
//!    thread per request fired at its scheduled arrival time regardless
//!    of completions (open loop — arrivals never slow down because the
//!    server is struggling). Records throughput, p50/p99 latency and the
//!    429 rejection rate per offered rate: the backpressure curve.
//!
//! The server runs with a deliberately small admission queue so the sweep
//! exercises the 429 path at super-capacity rates instead of buffering
//! its way through.
//!
//! Writes `BENCH_b8_service.json` (committed record) in full mode; with
//! `--quick` or `--baseline` the fresh JSON goes to `--out` and the
//! committed record is left untouched. `--smoke` runs the check.sh gate:
//! one scenario request, one streamed trace, one malformed request, a
//! `/v1/metrics` scrape and a graceful shutdown, all asserted.

use gather_bench::report;
use gather_bench::runner::percentile;
use gather_bench::Args;
use gather_config::Class;
use gather_serve::{Client, ScenarioSpec, ServeConfig, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The sweep's unit of work: a 16-robot scatter under the δ-motion
/// adversary with a tiny δ cannot gather within 50 rounds, so every
/// request burns exactly its round budget (~15 ms) — a deterministic
/// service time that does not depend on how the sweep interleaves.
fn load_spec() -> ScenarioSpec {
    ScenarioSpec {
        workload: "scatter".to_string(),
        class: None,
        n: 16,
        seed: 11,
        delta: 0.001,
        motion: "delta",
        max_rounds: 50,
        ..ScenarioSpec::default()
    }
}

fn bench_server(queue_capacity: usize) -> Server {
    Server::start(ServeConfig {
        queue_capacity,
        ..ServeConfig::default()
    })
    .expect("start in-process server")
}

/// Gate 1: served bytes == in-process bytes, for all six classes.
fn bit_identity(addr: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let mut client = Client::connect(addr).expect("connect");
    for class in Class::all() {
        let spec = ScenarioSpec {
            class: Some(class),
            seed: 7,
            faults: 1,
            max_rounds: 3_000,
            ..ScenarioSpec::default()
        };
        let local = format!(
            "{}\n",
            spec.to_scenario().expect("spec maps").run().to_jsonl()
        );
        let served = client.post_run(&spec.to_json()).expect("POST /run");
        if served.status != 200 {
            failures.push(format!(
                "class {}: status {} ({})",
                class.short_name(),
                served.status,
                served.text().trim()
            ));
            continue;
        }
        if served.body != local.as_bytes() {
            failures.push(format!(
                "class {}: served bytes differ from in-process run\n  served: {}\n  local:  {}",
                class.short_name(),
                served.text().trim(),
                local.trim()
            ));
        } else {
            println!(
                "  class {:<3} bit-identical ({} bytes)",
                class.short_name(),
                served.body.len()
            );
        }
    }
    failures
}

/// Gate 2: sequential requests → service rate μ in requests/second.
fn measure_capacity(addr: &str, probes: usize) -> f64 {
    let mut client = Client::connect(addr).expect("connect");
    let body = load_spec().to_json();
    // Warm-up: first request pays thread-local engine construction.
    assert_eq!(client.post_run(&body).expect("warm-up").status, 200);
    let started = Instant::now();
    for _ in 0..probes {
        assert_eq!(client.post_run(&body).expect("probe").status, 200);
    }
    probes as f64 / started.elapsed().as_secs_f64()
}

struct SweepRow {
    offered_rps: f64,
    achieved_rps: f64,
    requests: usize,
    completed: usize,
    rejected: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// One open-loop run: `requests` arrivals at `offered_rps`, one thread
/// per arrival so a slow server cannot slow the arrival process down.
fn open_loop(addr: &str, offered_rps: f64, requests: usize) -> SweepRow {
    let start = Instant::now() + Duration::from_millis(50);
    let completed = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let errored = Arc::new(AtomicU64::new(0));
    let body = Arc::new(load_spec().to_json());
    let handles: Vec<_> = (0..requests)
        .map(|i| {
            let addr = addr.to_string();
            let body = Arc::clone(&body);
            let completed = Arc::clone(&completed);
            let rejected = Arc::clone(&rejected);
            let errored = Arc::clone(&errored);
            std::thread::spawn(move || -> Option<f64> {
                let due = start + Duration::from_secs_f64(i as f64 / offered_rps);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let sent = Instant::now();
                let response = Client::connect(&addr).and_then(|mut c| c.post_run(&body));
                match response {
                    Ok(r) if r.status == 200 => {
                        completed.fetch_add(1, Ordering::Relaxed);
                        Some(sent.elapsed().as_secs_f64() * 1000.0)
                    }
                    Ok(r) if r.status == 429 => {
                        assert_eq!(
                            r.header("retry-after"),
                            Some("1"),
                            "429 must carry Retry-After"
                        );
                        rejected.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                    Ok(r) => {
                        eprintln!("unexpected status {} ({})", r.status, r.text().trim());
                        errored.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                    Err(e) => {
                        eprintln!("transport error: {e}");
                        errored.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .filter_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = (Instant::now() - start).as_secs_f64();
    latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    assert_eq!(
        errored.load(Ordering::Relaxed),
        0,
        "open-loop clients saw non-200/429 responses"
    );
    let completed = completed.load(Ordering::Relaxed) as usize;
    SweepRow {
        offered_rps,
        achieved_rps: completed as f64 / elapsed,
        requests,
        completed,
        rejected: rejected.load(Ordering::Relaxed) as usize,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

fn smoke() {
    let server = Server::start(ServeConfig {
        queue_capacity: 4,
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.addr();
    let mut client = Client::connect(&addr).expect("connect");

    let health = client.get("/v1/healthz").expect("GET /v1/healthz");
    assert_eq!(health.status, 200, "healthz: {}", health.text());

    // One real scenario request, checked against the in-process run.
    let spec = ScenarioSpec {
        seed: 3,
        max_rounds: 2_000,
        ..ScenarioSpec::default()
    };
    let expected = format!("{}\n", spec.to_scenario().expect("spec").run().to_jsonl());
    let run = client.post_run(&spec.to_json()).expect("POST /run");
    assert_eq!(run.status, 200, "run: {}", run.text());
    assert_eq!(
        run.body,
        expected.as_bytes(),
        "served bytes must match the in-process run"
    );

    // The streamed trace must be the in-process trace, byte for byte.
    let traced = spec.to_scenario().expect("spec").run_traced().1;
    let trace = client
        .get_trace("seed=3&max_rounds=2000")
        .expect("GET /v1/trace");
    assert_eq!(trace.status, 200, "trace: {}", trace.text());
    assert_eq!(
        trace.body,
        traced.as_bytes(),
        "streamed trace must match the in-process trace"
    );

    // One malformed request must be a 400, not a hang or a 500.
    let bad = client.post_run("{\"classs\":\"QR\"}").expect("POST bad");
    assert_eq!(bad.status, 400, "malformed spec: {}", bad.text());
    assert!(bad.text().contains("unknown spec field"), "{}", bad.text());
    assert!(
        bad.text().contains("\"code\":\"bad_spec\""),
        "errors are structured JSON: {}",
        bad.text()
    );

    // The scrape must reflect both requests on the same keep-alive
    // connection.
    let metrics = client.get("/v1/metrics").expect("GET /v1/metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    for needle in [
        "gather_requests_accepted_total 2\n",
        "gather_requests_completed_total 2\n",
        "gather_requests_rejected_malformed_total 1\n",
        "gather_scenarios_run_total 2\n",
        "gather_queue_capacity 4\n",
        "gather_request_phase_execute_ns_count 2\n",
        "gather_pool_job_run_time_ns_count",
    ] {
        assert!(text.contains(needle), "metrics missing {needle:?}:\n{text}");
    }

    // Graceful shutdown: drains, joins, and the port stops answering.
    server.shutdown();
    assert!(
        Client::connect(&addr)
            .and_then(|mut c| c.get("/v1/healthz"))
            .is_err(),
        "server still answering after shutdown"
    );
    println!("b8 smoke: OK (run + trace + 400 + metrics + shutdown)");
}

fn f(x: f64, places: usize) -> String {
    format!("{x:.places$}")
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let args = Args::parse();
    let mut failures: Vec<String> = Vec::new();

    // Small queue on purpose: the sweep should hit the 429 path well
    // before memory does.
    let server = bench_server(8);
    let addr = server.addr();

    println!("B8 — scenario service over TCP ({addr})\n");
    println!("bit-identity across configuration classes:");
    let identity_failures = bit_identity(&addr);
    let bit_identical = identity_failures.is_empty();
    failures.extend(identity_failures);

    let probes = if args.quick { 8 } else { 24 };
    let capacity = measure_capacity(&addr, probes);
    println!("\nmeasured capacity: {capacity:.1} req/s (sequential, {probes} probes)");

    let per_rate = if args.quick { 24 } else { 80 };
    let mut rows = Vec::new();
    for factor in [0.5, 1.0, 2.0, 4.0] {
        rows.push(open_loop(&addr, factor * capacity, per_rate));
    }

    println!("\nopen-loop sweep ({per_rate} requests per rate, queue capacity 8):\n");
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "offered r/s", "achieved r/s", "completed", "rejected", "reject %", "p50 ms", "p99 ms"
    );
    for row in &rows {
        println!(
            "{:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9}",
            f(row.offered_rps, 1),
            f(row.achieved_rps, 1),
            row.completed,
            row.rejected,
            f(100.0 * row.rejected as f64 / row.requests as f64, 1),
            f(row.p50_ms, 1),
            f(row.p99_ms, 1),
        );
        if row.completed + row.rejected != row.requests {
            failures.push(format!(
                "open loop at {:.1} r/s: {} + {} != {} (lost requests)",
                row.offered_rps, row.completed, row.rejected, row.requests
            ));
        }
    }

    // Every request must be answered — completed or explicitly rejected —
    // and the served results must be the in-process results.
    let scrape = Client::connect(&addr)
        .and_then(|mut c| c.get("/v1/metrics"))
        .expect("final scrape");
    assert_eq!(scrape.status, 200);
    server.shutdown();

    let mut json = format!(
        "{{\n  \"bench\": \"b8_service\",\n  \"bit_identical_across_classes\": {bit_identical},\n  \"capacity_req_per_sec\": {:.1},\n  \"queue_capacity\": 8,\n  \"requests_per_rate\": {per_rate},\n  \"open_loop\": [\n",
        capacity
    );
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \"completed\": {}, \"rejected\": {}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}{}\n",
            row.offered_rps,
            row.achieved_rps,
            row.completed,
            row.rejected,
            row.p50_ms,
            row.p99_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    println!();
    report::emit_record(
        "b8_service",
        &json,
        &args.out_dir,
        args.quick,
        args.baseline.is_some(),
    );
    report::fail_if_any("B8", &failures);
}
