//! Standalone scenario service.
//!
//! ```text
//! cargo run --release -p gather-serve --bin serve -- --addr 127.0.0.1:8080
//! ```
//!
//! Runs until stdin reaches EOF (Ctrl-D, or the end of a piped script),
//! then drains admitted work and exits — a shutdown trigger that needs no
//! signal handling and stays scriptable: `echo | serve` starts and
//! cleanly stops a server.

use gather_serve::{ServeConfig, Server};
use std::io::BufRead;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]\n\
         \x20            [--dispatchers N] [--shards N] [--no-epoll]\n\
         \n\
         --addr HOST:PORT  bind address (default 127.0.0.1:8080; port 0 = ephemeral)\n\
         --workers N       simulation worker threads (default: available cores)\n\
         --queue N         admission-queue capacity (default 32)\n\
         --cache N         result-cache entries (default GATHER_CACHE_ENTRIES or 4096;\n\
         \x20                0 disables caching)\n\
         --dispatchers N   dispatcher lanes (default: one per worker)\n\
         --shards N        event-loop shards (default: min(cores, 4))\n\
         --no-epoll        force the thread-per-connection engine\n\
         \x20                (GATHER_NO_EPOLL=1 does the same)"
    );
    std::process::exit(2)
}

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                config.queue_capacity = value("--queue").parse().unwrap_or_else(|_| usage())
            }
            "--cache" => {
                config.cache_entries = Some(value("--cache").parse().unwrap_or_else(|_| usage()))
            }
            "--dispatchers" => {
                config.dispatchers = value("--dispatchers").parse().unwrap_or_else(|_| usage())
            }
            "--shards" => {
                config.loop_shards = value("--shards").parse().unwrap_or_else(|_| usage())
            }
            "--no-epoll" => config.event_loop = false,
            _ => usage(),
        }
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "gather-serve listening on http://{} (engine: {})",
        server.addr(),
        server.engine()
    );
    println!(
        "routes: POST /v1/run, POST /v1/batch, GET /v1/trace, GET /v1/metrics, GET /v1/healthz"
    );
    println!("close stdin (Ctrl-D) to drain and shut down");

    // Park until stdin EOF.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    eprintln!("stdin closed; draining in-flight work");
    server.shutdown();
    eprintln!("shutdown complete");
}
