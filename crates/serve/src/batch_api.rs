//! `POST /v1/batch`: the amortised mega-batch endpoint.
//!
//! `/v1/run` optimises per-request latency — small batches, inline
//! single-scenario execution on a dispatcher lane. `/v1/batch` optimises
//! throughput for bulk sweeps: it accepts up to
//! [`ServeConfig::max_mega_batch`] scenarios in one body and executes
//! the cache misses through the columnar `BatchEngine` lanes
//! ([`run_batched_on`]), which amortises scheduler bookkeeping and
//! engine setup across [`BATCH_WIDTH`] scenarios per worker claim
//! instead of one.
//!
//! Everything else — spec validation, canonical cache keys, JSONL
//! response stitching in request order, `x-gather-cache` headers — is
//! shared with `/v1/run` (same admission path, same [`Work::Run`]
//! execution), so the response for a given scenario list is
//! byte-identical across both endpoints and across engines. That holds
//! because `run_batched_on` is bit-identical to sequential `run()` by
//! the BatchEngine contract (DESIGN.md §13), which the unit test below
//! re-checks at this boundary.
//!
//! [`ServeConfig::max_mega_batch`]: crate::server::ServeConfig::max_mega_batch
//! [`Work::Run`]: crate::server::Work::Run

use crate::http::Request;
use crate::server::{run_route, Inner, Replier, Routed};
use gather_bench::pool::WorkerPool;
use gather_bench::runner::Scenario;
use gather_bench::sweep::run_batched_on;
use gather_sim::metrics::RunMetrics;

/// Scenarios per lane claim inside the columnar engine — wide enough to
/// amortise claim overhead, narrow enough to keep lanes load-balanced.
pub const BATCH_WIDTH: usize = 16;

/// Routes `POST /v1/batch`: identical admission to `/v1/run` except for
/// the larger batch cap and the columnar execution flag.
pub(crate) fn batch_route(inner: &Inner, request: &Request, replier: Replier) -> Routed {
    run_route(inner, request, replier, false, true)
}

/// Executes a mega-batch's cache misses on the worker pool's columnar
/// lanes.
pub(crate) fn run_batch_lanes(pool: &WorkerPool, scenarios: &[Scenario]) -> Vec<RunMetrics> {
    run_batched_on(pool, scenarios, BATCH_WIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    /// The `/v1/batch` executor must be bit-identical to sequential
    /// runs — that is what makes serving its results from the shared
    /// result cache (populated by either endpoint) sound.
    #[test]
    fn lane_executor_matches_sequential_runs() {
        let scenarios: Vec<Scenario> = (0..5)
            .map(|i| {
                let spec = ScenarioSpec::from_query(&format!(
                    "workload=scatter&n=9&seed={}&faults=1&max_rounds=300",
                    40 + i
                ))
                .expect("valid spec");
                spec.to_scenario().expect("valid scenario")
            })
            .collect();
        let pool = WorkerPool::new(2);
        let batched = run_batch_lanes(&pool, &scenarios);
        pool.shutdown();
        let sequential: Vec<RunMetrics> = scenarios.iter().map(Scenario::run).collect();
        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(
                b.to_jsonl(),
                s.to_jsonl(),
                "columnar lanes diverged from sequential execution"
            );
        }
    }
}
