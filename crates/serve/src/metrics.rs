//! Server counters and `RunMetrics` aggregates for the `/metrics`
//! endpoint.
//!
//! Counters are relaxed atomics (monotonic, scrape-consistent enough for
//! operational use); request latencies go into a fixed-size ring so the
//! p50/p99 gauges reflect recent behaviour without unbounded memory. The
//! exposition format is the Prometheus text convention (`name value`
//! lines, `{quantile="..."}` labels) rendered by hand — no external
//! dependencies.

use gather_bench::pool::PoolObs;
use gather_obs::Histogram;
use gather_sim::metrics::RunMetrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Latencies kept for the quantile gauges (newest overwrite oldest).
const LATENCY_RING: usize = 1024;

/// Per-request phase timings (log-bucketed, lock-free): how long request
/// handling spent parsing/validating, waiting in the admission queue, and
/// executing on the pool. The serving-layer counterpart of the engine's
/// per-round phase spans.
#[derive(Debug, Default)]
pub struct RequestPhases {
    /// Parse + validation time, admission-path only (ns).
    pub parse: Histogram,
    /// Admission-to-dispatch queue wait (ns).
    pub queue_wait: Histogram,
    /// Pool execution time of the whole batch (ns).
    pub execute: Histogram,
}

/// Shared counters for one server instance.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests refused with 429 (queue full).
    pub rejected_full: AtomicU64,
    /// Requests refused with 400/413 (malformed or oversized).
    pub rejected_malformed: AtomicU64,
    /// Requests refused with 503 (shutting down).
    pub rejected_shutdown: AtomicU64,
    /// Requests answered 200.
    pub completed: AtomicU64,
    /// Requests discarded unrun because their deadline passed in-queue.
    pub expired: AtomicU64,
    /// Requests answered 500 (a scenario panicked).
    pub failed: AtomicU64,
    /// Scenario runs executed (a batch request counts each scenario).
    pub scenarios_run: AtomicU64,
    /// Runs that gathered.
    pub runs_gathered: AtomicU64,
    /// Total simulated rounds across all runs.
    pub rounds_total: AtomicU64,
    /// Total Weiszfeld iterations across all runs.
    pub weiszfeld_iters_total: AtomicU64,
    /// Total `classify()` invocations across all runs.
    pub classifications_total: AtomicU64,
    /// Total analysis-cache hits across all runs.
    pub cache_hits_total: AtomicU64,
    /// Total analyses computed (from scratch or by patching), summed from
    /// runs that attached cache stats ([`RunMetrics::analysis_cache`]).
    pub cache_computed_total: AtomicU64,
    /// Total dirty-skip cache hits (incremental path, no robot moved),
    /// summed from runs that attached cache stats.
    pub cache_dirty_skips_total: AtomicU64,
    /// Total event-heap events processed, summed from ASYNC-engine runs
    /// ([`RunMetrics::async_events`]); stays 0 while only round-based
    /// scenarios are served.
    pub async_events_total: AtomicU64,
    /// Total distance travelled, accumulated as f64 bits under a CAS loop.
    travel_total_bits: AtomicU64,
    /// Per-request phase histograms (parse / queue wait / execute).
    pub phases: RequestPhases,
    latencies: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    micros: Vec<u64>,
    next: usize,
}

impl ServerMetrics {
    /// Folds one run's metrics into the aggregates.
    pub fn record_run(&self, m: &RunMetrics) {
        self.scenarios_run.fetch_add(1, Ordering::Relaxed);
        if m.gathered {
            self.runs_gathered.fetch_add(1, Ordering::Relaxed);
        }
        self.rounds_total.fetch_add(m.rounds, Ordering::Relaxed);
        self.weiszfeld_iters_total
            .fetch_add(m.weiszfeld_iters, Ordering::Relaxed);
        self.classifications_total
            .fetch_add(m.classifications, Ordering::Relaxed);
        self.cache_hits_total
            .fetch_add(m.cache_hits, Ordering::Relaxed);
        if let Some(cs) = &m.analysis_cache {
            self.cache_computed_total
                .fetch_add(cs.computed, Ordering::Relaxed);
            self.cache_dirty_skips_total
                .fetch_add(cs.dirty_skips, Ordering::Relaxed);
        }
        if let Some(events) = m.async_events {
            self.async_events_total.fetch_add(events, Ordering::Relaxed);
        }
        let mut current = self.travel_total_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + m.total_travel).to_bits();
            match self.travel_total_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Records one completed request's admission-to-response latency.
    pub fn record_latency(&self, latency: Duration) {
        let mut ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        if ring.micros.len() < LATENCY_RING {
            ring.micros.push(micros);
        } else {
            let at = ring.next;
            ring.micros[at] = micros;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// Total distance travelled across all served runs.
    pub fn travel_total(&self) -> f64 {
        f64::from_bits(self.travel_total_bits.load(Ordering::Relaxed))
    }

    /// Latency quantile `q` in `[0, 1]` over the retained ring, in
    /// milliseconds (`None` before the first completed request).
    pub fn latency_quantile_ms(&self, q: f64) -> Option<f64> {
        let ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if ring.micros.is_empty() {
            return None;
        }
        let mut sorted = ring.micros.clone();
        drop(ring);
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank] as f64 / 1000.0)
    }

    /// Renders the text exposition (`queue_depth` and `queue_capacity` are
    /// gauges owned by the admission queue, `pool` the worker pool's
    /// queue-wait/run-time histograms, `cache` the result cache's counter
    /// snapshot — all passed in by the server).
    pub fn render(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        pool: Option<&PoolObs>,
        cache: Option<&crate::cache::CacheCounters>,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        out.push_str("# gather-serve metrics, text exposition v1\n");
        let counters: [(&str, &AtomicU64); 16] = [
            ("gather_requests_accepted_total", &self.accepted),
            ("gather_requests_rejected_full_total", &self.rejected_full),
            (
                "gather_requests_rejected_malformed_total",
                &self.rejected_malformed,
            ),
            (
                "gather_requests_rejected_shutdown_total",
                &self.rejected_shutdown,
            ),
            ("gather_requests_completed_total", &self.completed),
            ("gather_requests_expired_total", &self.expired),
            ("gather_requests_failed_total", &self.failed),
            ("gather_scenarios_run_total", &self.scenarios_run),
            ("gather_runs_gathered_total", &self.runs_gathered),
            ("gather_sim_rounds_total", &self.rounds_total),
            (
                "gather_sim_weiszfeld_iters_total",
                &self.weiszfeld_iters_total,
            ),
            (
                "gather_sim_classifications_total",
                &self.classifications_total,
            ),
            ("gather_sim_cache_hits_total", &self.cache_hits_total),
            (
                "gather_sim_cache_computed_total",
                &self.cache_computed_total,
            ),
            (
                "gather_sim_cache_dirty_skips_total",
                &self.cache_dirty_skips_total,
            ),
            ("gather_sim_async_events_total", &self.async_events_total),
        ];
        for (name, counter) in counters {
            writeln!(out, "{name} {}", counter.load(Ordering::Relaxed)).expect("write to String");
        }
        writeln!(out, "gather_sim_travel_total {:?}", self.travel_total())
            .expect("write to String");
        writeln!(out, "gather_queue_depth {queue_depth}").expect("write to String");
        writeln!(out, "gather_queue_capacity {queue_capacity}").expect("write to String");
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            if let Some(ms) = self.latency_quantile_ms(q) {
                writeln!(
                    out,
                    "gather_request_latency_ms{{quantile=\"{label}\"}} {ms:.3}"
                )
                .expect("write to String");
            }
        }
        write_histogram(
            &mut out,
            "gather_request_phase_parse_ns",
            &self.phases.parse,
        );
        write_histogram(
            &mut out,
            "gather_request_phase_queue_wait_ns",
            &self.phases.queue_wait,
        );
        write_histogram(
            &mut out,
            "gather_request_phase_execute_ns",
            &self.phases.execute,
        );
        if let Some(pool) = pool {
            write_histogram(&mut out, "gather_pool_job_queue_wait_ns", &pool.queue_wait);
            write_histogram(&mut out, "gather_pool_job_run_time_ns", &pool.run_time);
        }
        if let Some(c) = cache {
            writeln!(out, "gather_cache_hits_total {}", c.hits).expect("write to String");
            writeln!(out, "gather_cache_misses_total {}", c.misses).expect("write to String");
            writeln!(out, "gather_cache_evictions_total {}", c.evictions).expect("write to String");
            writeln!(out, "gather_cache_entries {}", c.entries).expect("write to String");
            writeln!(out, "gather_cache_capacity {}", c.capacity).expect("write to String");
            writeln!(out, "gather_cache_hit_ratio {:.6}", c.hit_ratio()).expect("write to String");
        }
        out
    }
}

/// Emits one histogram as a count plus p50/p99/max quantile gauges (skipped
/// entirely while empty, matching the latency-gauge convention above).
fn write_histogram(out: &mut String, name: &str, h: &Histogram) {
    use std::fmt::Write;
    let count = h.count();
    if count == 0 {
        return;
    }
    writeln!(out, "{name}_count {count}").expect("write to String");
    for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("1", 1.0)] {
        writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q)).expect("write to String");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(travel: f64, gathered: bool) -> RunMetrics {
        RunMetrics {
            gathered,
            rounds: 10,
            total_travel: travel,
            class_rounds: Default::default(),
            class_sequence: vec![],
            transitions: Default::default(),
            classifications: 4,
            cache_hits: 2,
            weiszfeld_iters: 3,
            analysis_cache: Some(gather_sim::metrics::CacheStats {
                computed: 3,
                hits: 2,
                dirty_skips: 1,
            }),
            async_events: None,
            phase_ns: None,
        }
    }

    #[test]
    fn aggregates_runs() {
        let m = ServerMetrics::default();
        m.record_run(&run(1.5, true));
        m.record_run(&run(2.25, false));
        assert_eq!(m.scenarios_run.load(Ordering::Relaxed), 2);
        assert_eq!(m.runs_gathered.load(Ordering::Relaxed), 1);
        assert_eq!(m.rounds_total.load(Ordering::Relaxed), 20);
        assert_eq!(m.weiszfeld_iters_total.load(Ordering::Relaxed), 6);
        assert_eq!(m.cache_computed_total.load(Ordering::Relaxed), 6);
        assert_eq!(m.cache_dirty_skips_total.load(Ordering::Relaxed), 2);
        assert!((m.travel_total() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn latency_quantiles() {
        let m = ServerMetrics::default();
        assert_eq!(m.latency_quantile_ms(0.5), None);
        for ms in 1..=100u64 {
            m.record_latency(Duration::from_millis(ms));
        }
        let p50 = m.latency_quantile_ms(0.5).unwrap();
        let p99 = m.latency_quantile_ms(0.99).unwrap();
        assert!((49.0..=52.0).contains(&p50), "p50 = {p50}");
        assert!((98.0..=100.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn ring_keeps_only_recent_latencies() {
        let m = ServerMetrics::default();
        for _ in 0..LATENCY_RING {
            m.record_latency(Duration::from_millis(1));
        }
        for _ in 0..LATENCY_RING {
            m.record_latency(Duration::from_millis(100));
        }
        assert!(m.latency_quantile_ms(0.5).unwrap() > 50.0);
    }

    #[test]
    fn render_exposes_every_counter() {
        let m = ServerMetrics::default();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.record_run(&run(0.5, true));
        m.record_latency(Duration::from_millis(7));
        let text = m.render(2, 32, None, None);
        assert!(text.contains("gather_requests_accepted_total 3\n"));
        assert!(text.contains("gather_queue_depth 2\n"));
        assert!(text.contains("gather_queue_capacity 32\n"));
        assert!(text.contains("gather_sim_travel_total 0.5\n"));
        assert!(text.contains("gather_sim_cache_computed_total 3\n"));
        assert!(text.contains("gather_sim_cache_dirty_skips_total 1\n"));
        assert!(text.contains("gather_request_latency_ms{quantile=\"0.99\"}"));
        // No result cache passed in -> no cache gauges.
        assert!(!text.contains("gather_cache_hits_total"));
    }

    #[test]
    fn render_exposes_result_cache_counters() {
        let m = ServerMetrics::default();
        let c = crate::cache::CacheCounters {
            hits: 3,
            misses: 1,
            evictions: 2,
            entries: 5,
            capacity: 64,
        };
        let text = m.render(0, 32, None, Some(&c));
        assert!(text.contains("gather_cache_hits_total 3\n"));
        assert!(text.contains("gather_cache_misses_total 1\n"));
        assert!(text.contains("gather_cache_evictions_total 2\n"));
        assert!(text.contains("gather_cache_entries 5\n"));
        assert!(text.contains("gather_cache_capacity 64\n"));
        assert!(text.contains("gather_cache_hit_ratio 0.750000\n"));
    }

    #[test]
    fn render_exposes_phase_and_pool_histograms() {
        let m = ServerMetrics::default();
        // Empty histograms are omitted from the exposition.
        assert!(!m
            .render(0, 32, None, None)
            .contains("gather_request_phase_parse_ns"));
        m.phases.parse.record(1_000);
        m.phases.queue_wait.record(2_000);
        m.phases.execute.record(3_000);
        let pool = PoolObs::default();
        pool.queue_wait.record(10);
        pool.run_time.record(20);
        let text = m.render(0, 32, Some(&pool), None);
        assert!(text.contains("gather_request_phase_parse_ns_count 1\n"));
        assert!(text.contains("gather_request_phase_queue_wait_ns{quantile=\"0.5\"}"));
        assert!(text.contains("gather_request_phase_execute_ns{quantile=\"1\"}"));
        assert!(text.contains("gather_pool_job_queue_wait_ns_count 1\n"));
        assert!(text.contains("gather_pool_job_run_time_ns_count 1\n"));
    }
}
