//! The batch scenario server: acceptor, serving engines, sharded
//! dispatch, deterministic result cache.
//!
//! Thread architecture (all pure std):
//!
//! * **acceptor** — one thread on a non-blocking listener. Under the
//!   default *epoll engine* (Linux) it hands accepted sockets round-robin
//!   to the event-loop shards ([`crate::event_loop`]); under the
//!   *threaded engine* (non-Linux, `GATHER_NO_EPOLL=1`, or
//!   [`ServeConfig::event_loop`] `false`) it spawns a handler thread per
//!   connection. Both enforce [`ServeConfig::max_connections`] with an
//!   immediate 503 beyond the cap;
//! * **event-loop shards / handlers** — parse HTTP/1.1 requests
//!   (keep-alive and pipelining supported), enforce the read deadline
//!   (408) and the idle bound, consult the result cache, and *admit or
//!   reject immediately*: a full queue answers 429 + `Retry-After` now,
//!   mirroring the paper's wait-free design point at the serving layer —
//!   no request ever waits on an unbounded buffer;
//! * **dispatcher lanes** — [`ServeConfig::dispatchers`] threads, each
//!   draining its own lane of the [`Sharded`] admission queue (producers
//!   rotate lanes with an atomic cursor, the `WorkerPool` claim idiom).
//!   A single-scenario job runs *inline* on its long-lived dispatcher
//!   thread (recycling [`EngineParts`] via the runner's thread-local
//!   scratch); multi-scenario jobs fan out over the shared
//!   [`WorkerPool`]; `/v1/batch` jobs go through the columnar
//!   `BatchEngine` lanes (`run_batched_on`);
//! * **result cache** — completed payloads are stored byte-exact under
//!   the canonical spec key ([`crate::cache`]); an all-hit request is
//!   answered at admission time without touching queue or pool,
//!   `x-gather-cache`/`Age` headers report the disposition;
//! * **shutdown** — [`Server::shutdown`] stops the acceptor, closes the
//!   queue (pushes refused, queued jobs drained), joins the dispatchers,
//!   shuts the pool down, then joins shards/handlers. Admitted work
//!   always completes; idle connections close within the poll interval.
//!
//! Determinism contract (DESIGN.md §11, §16): a `200` response body is
//! the concatenated [`RunMetrics::to_jsonl`] lines of the batch, in
//! request order. Scenario execution is a pure function of the spec, so
//! cached payloads are bit-identical to freshly computed ones, and the
//! response for a given body is bit-identical to serialising the same
//! scenarios run in-process — regardless of worker count, engine,
//! caching, or server uptime.
//!
//! [`EngineParts`]: gather_sim::EngineParts
//! [`RunMetrics::to_jsonl`]: gather_sim::metrics::RunMetrics::to_jsonl

use crate::cache::{self, KeyKind, ResultCache};
use crate::http::{self, Body, HttpError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::queue::{Rejected, Sharded};
use crate::spec::{RunRequest, ScenarioSpec};
use gather_bench::pool::{self, PoolObs, WorkerPool};
use gather_bench::runner::Scenario;
use std::io::{self, BufRead, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle threaded handler (or an event-loop shard) wakes to
/// check for shutdown and scan timeouts.
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(100);
/// Pause between accept attempts on the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Round-budget ceiling for `/v1/trace` (both wire forms) — every round
/// becomes one response line, so traced runs get a tighter cap than
/// `/v1/run`'s [`crate::spec::MAX_ROUNDS`].
pub const TRACE_MAX_ROUNDS: u64 = 100_000;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker-pool threads (0 = `GATHER_THREADS` / available cores).
    pub workers: usize,
    /// Dispatcher lanes draining the admission queue (0 = one per
    /// resolved worker).
    pub dispatchers: usize,
    /// Admission-queue capacity — the only buffering between admission
    /// and execution; beyond it requests are rejected with 429. Split
    /// evenly across dispatcher lanes.
    pub queue_capacity: usize,
    /// Scenarios allowed per `POST /v1/run` request.
    pub max_batch: usize,
    /// Scenarios allowed per `POST /v1/batch` request (the amortized
    /// mega-batch endpoint).
    pub max_mega_batch: usize,
    /// Request-body size limit in bytes.
    pub max_body_bytes: usize,
    /// Queue-wait deadline applied when a request carries none.
    pub default_deadline_ms: u64,
    /// Concurrent connections before new ones get an immediate 503.
    pub max_connections: usize,
    /// Result-cache capacity in entries (`None` = `GATHER_CACHE_ENTRIES`
    /// or 4096; `Some(0)` disables caching).
    pub cache_entries: Option<usize>,
    /// Use the epoll event loop on Linux (`false` forces the
    /// thread-per-connection engine; `GATHER_NO_EPOLL=1` does the same
    /// without a config change).
    pub event_loop: bool,
    /// Event-loop shards (0 = `min(available cores, 4)`).
    pub loop_shards: usize,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout_ms: u64,
    /// A request whose bytes stall longer than this mid-read is answered
    /// 408 and the connection closed.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            dispatchers: 0,
            queue_capacity: 32,
            max_batch: 64,
            max_mega_batch: 1024,
            max_body_bytes: 1 << 20,
            default_deadline_ms: 30_000,
            max_connections: 128,
            cache_entries: None,
            event_loop: true,
            loop_shards: 0,
            idle_timeout_ms: 30_000,
            read_timeout_ms: 5_000,
        }
    }
}

/// The dispatcher's answer to one admitted request.
pub(crate) enum Reply {
    /// 200: the response payload (cache-shared when a single stored
    /// entry covers the whole body).
    Done(Body),
    /// 504: the queue-wait deadline passed before execution started.
    Expired,
    /// 500: a scenario panicked (message included).
    Failed(String),
}

/// One `POST /v1/run` (or `/v1/batch`) slot, resolved against the result
/// cache at admission time.
pub(crate) enum RunSlot {
    /// Served from the cache: the stored JSONL line (newline included).
    Hit(Arc<Vec<u8>>),
    /// Must execute; the rendered line is inserted under `key` after.
    Miss { key: u64, scenario: Scenario },
}

/// What the dispatcher executes for one admitted request.
pub(crate) enum Work {
    /// A scenario batch, answered with summary JSONL stitched from
    /// cache hits and fresh runs in request order. `batch` routes the
    /// misses through the columnar `BatchEngine` lanes (`/v1/batch`).
    Run { slots: Vec<RunSlot>, batch: bool },
    /// `/v1/trace` (JSON `POST`, or the deprecated query-param `GET`):
    /// one scenario, answered with a trace/v2 document — the spec's
    /// header line followed by its full per-round NDJSON trace — cached
    /// whole under `key`.
    Trace {
        key: u64,
        scenario: Box<Scenario>,
        /// The pre-rendered trace/v2 header line (newline included).
        header: String,
    },
}

/// One admitted request.
pub(crate) struct Job {
    work: Work,
    /// Queue-wait deadline: checked when the dispatcher *pops* the job; a
    /// job that starts executing is never aborted mid-run.
    deadline: Instant,
    /// Admission time, feeding the queue-wait phase histogram.
    admitted: Instant,
    reply: Replier,
}

/// Where a dispatcher delivers its [`Reply`]: a blocking channel (the
/// threaded engine parks its handler on `recv`) or an event-loop shard's
/// inbox (slot + generation guard against connection reuse).
pub(crate) enum Replier {
    Sync(mpsc::SyncSender<Reply>),
    #[cfg(target_os = "linux")]
    Event {
        shard: Arc<crate::event_loop::ShardHandle>,
        slot: usize,
        generation: u64,
    },
}

impl Replier {
    fn send(self, reply: Reply) {
        match self {
            // A handler that gave up is gone with its receiver; ignore.
            Replier::Sync(tx) => drop(tx.send(reply)),
            #[cfg(target_os = "linux")]
            Replier::Event {
                shard,
                slot,
                generation,
            } => shard.push_reply(slot, generation, reply),
        }
    }
}

/// Response context carried from admission to reply delivery.
pub(crate) struct Pending {
    pub(crate) chunked: bool,
    pub(crate) deprecation: bool,
    /// `x-gather-cache` value for the completed response (`None` when
    /// the cache is disabled).
    pub(crate) cache_tag: Option<&'static str>,
    pub(crate) started: Instant,
}

/// What routing produced: an immediate response (errors, metrics, cache
/// hits) or an admitted job whose response arrives via the [`Replier`].
pub(crate) enum Routed {
    Now(Response),
    Queued(Pending),
}

pub(crate) struct Inner {
    pub(crate) config: ServeConfig,
    queue: Sharded<Job>,
    pool: WorkerPool,
    /// Per-job pool histograms (the pool is built instrumented; recording
    /// is a few relaxed atomic increments per job).
    pool_obs: Arc<PoolObs>,
    cache: ResultCache,
    metrics: ServerMetrics,
    pub(crate) shutting_down: AtomicBool,
}

impl Inner {
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

/// How the acceptor disposes of new connections.
enum AcceptMode {
    /// Spawn one handler thread per connection.
    Threaded,
    /// Distribute round-robin to the event-loop shards.
    #[cfg(target_os = "linux")]
    Epoll(Vec<Arc<crate::event_loop::ShardHandle>>),
}

/// A running scenario service. Dropping (or calling
/// [`shutdown`](Server::shutdown)) performs the full graceful-drain
/// sequence.
pub struct Server {
    inner: Arc<Inner>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
    #[cfg(target_os = "linux")]
    shards: Vec<(Arc<crate::event_loop::ShardHandle>, JoinHandle<()>)>,
    engine: &'static str,
    port: u16,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let port = listener.local_addr()?.port();
        let workers = if config.workers == 0 {
            pool::default_threads()
        } else {
            config.workers
        };
        let dispatchers = if config.dispatchers == 0 {
            workers
        } else {
            config.dispatchers
        };
        let cache_entries = config.cache_entries.unwrap_or_else(cache::default_entries);
        let pool_obs = Arc::new(PoolObs::default());
        let inner = Arc::new(Inner {
            queue: Sharded::new(dispatchers, config.queue_capacity),
            pool: WorkerPool::new_instrumented(workers, Arc::clone(&pool_obs)),
            pool_obs,
            cache: ResultCache::new(cache_entries),
            metrics: ServerMetrics::default(),
            shutting_down: AtomicBool::new(false),
            config,
        });
        let dispatcher_handles = (0..dispatchers)
            .map(|lane| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("gather-serve-dispatch-{lane}"))
                    .spawn(move || dispatcher_loop(&inner, lane))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        // Engine selection: epoll where available unless opted out; any
        // failure to stand the shards up (exotic kernels, fd limits)
        // falls back to the threaded engine instead of failing startup.
        let mut engine = "threaded";
        let mut mode = AcceptMode::Threaded;
        #[cfg(target_os = "linux")]
        let mut shards = Vec::new();
        #[cfg(target_os = "linux")]
        if inner.config.event_loop && std::env::var_os("GATHER_NO_EPOLL").is_none() {
            let shard_count = if inner.config.loop_shards == 0 {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
                    .min(4)
            } else {
                inner.config.loop_shards
            };
            if let Ok(spawned) = crate::event_loop::spawn_shards(&inner, shard_count, &active) {
                mode = AcceptMode::Epoll(spawned.iter().map(|(h, _)| Arc::clone(h)).collect());
                shards = spawned;
                engine = "epoll";
            }
        }

        let acceptor = {
            let inner = Arc::clone(&inner);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("gather-serve-accept".to_string())
                .spawn(move || acceptor_loop(&inner, &listener, &conns, &active, &mode))?
        };
        Ok(Server {
            inner,
            conns,
            acceptor: Some(acceptor),
            dispatchers: dispatcher_handles,
            #[cfg(target_os = "linux")]
            shards,
            engine,
            port,
        })
    }

    /// The bound port (useful with an ephemeral bind).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// `host:port` of the listening socket.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// The server's counters (also served at `GET /metrics`).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.inner.metrics
    }

    /// Result-cache counter snapshot.
    pub fn cache_counters(&self) -> cache::CacheCounters {
        self.inner.cache.counters()
    }

    /// The serving engine in use: `"epoll"` (readiness event loop) or
    /// `"threaded"` (thread per connection). Lets smoke gates skip
    /// epoll-specific assertions where the event loop is unavailable.
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// Gracefully shuts down: refuse new work, drain admitted work, join
    /// every thread. Blocks until the drain completes.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Ordering matters: flag first (new POSTs answer 503 and idle
        // connections begin closing), then stop accepting, then close the
        // queue so the dispatchers drain admitted jobs and exit, then the
        // pool (nothing submits to it once the dispatchers are gone), and
        // only then join shards/handlers — they unblock once the drained
        // replies are written out.
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.inner.queue.close();
        for dispatcher in self.dispatchers.drain(..) {
            let _ = dispatcher.join();
        }
        self.inner.pool.shutdown();
        #[cfg(target_os = "linux")]
        {
            for (handle, _) in &self.shards {
                handle.wake_now();
            }
            for (_, join) in self.shards.drain(..) {
                let _ = join.join();
            }
        }
        let handlers = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Nanoseconds since `since`, saturated into a histogram-friendly `u64`.
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

fn dispatcher_loop(inner: &Inner, lane: usize) {
    while let Some(job) = inner.queue.pop(lane) {
        inner
            .metrics
            .phases
            .queue_wait
            .record(elapsed_ns(job.admitted));
        if Instant::now() >= job.deadline {
            inner.metrics.expired.fetch_add(1, Ordering::Relaxed);
            job.reply.send(Reply::Expired);
            continue;
        }
        // A panicking scenario (an invariant violation, which validated
        // specs should never trigger) must cost that request a 500, not
        // the whole service — the pool drains and stays usable for the
        // next job, and dispatcher-inline runs recover their thread-local
        // engine scratch on the next use.
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(inner, job.work)));
        inner.metrics.phases.execute.record(elapsed_ns(started));
        let reply = match outcome {
            Ok(body) => {
                inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
                Reply::Done(body)
            }
            Err(payload) => {
                inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                Reply::Failed(panic_message(payload))
            }
        };
        job.reply.send(reply);
    }
}

/// Runs one job's cache misses and renders the 200 body, stitching hits
/// and fresh lines in request order.
fn execute(inner: &Inner, work: Work) -> Body {
    match work {
        Work::Run { slots, batch } => {
            let mut parts: Vec<Option<Arc<Vec<u8>>>> = Vec::with_capacity(slots.len());
            let mut positions = Vec::new();
            let mut keys = Vec::new();
            let mut misses = Vec::new();
            for slot in slots {
                match slot {
                    RunSlot::Hit(line) => parts.push(Some(line)),
                    RunSlot::Miss { key, scenario } => {
                        positions.push(parts.len());
                        parts.push(None);
                        keys.push(key);
                        misses.push(scenario);
                    }
                }
            }
            let runs = if batch {
                // `/v1/batch`: lockstep columnar lanes, bit-identical to
                // sequential runs by the BatchEngine contract.
                crate::batch_api::run_batch_lanes(&inner.pool, &misses)
            } else if misses.len() == 1 {
                // Inline on this long-lived dispatcher thread: the
                // runner's thread-local EngineParts recycling applies
                // here exactly as on a pool worker, and the single-job
                // hot path skips the pool handoff entirely.
                vec![misses[0].run()]
            } else {
                inner.pool.map(&misses, |s| s.run())
            };
            for (i, metrics) in runs.iter().enumerate() {
                inner.metrics.record_run(metrics);
                let mut line = metrics.to_jsonl();
                line.push('\n');
                let line = Arc::new(line.into_bytes());
                inner.cache.insert(keys[i], Arc::clone(&line));
                parts[positions[i]] = Some(line);
            }
            stitch(parts)
        }
        Work::Trace {
            key,
            scenario,
            header,
        } => {
            // Inline like single-scenario runs; the round lines are
            // `Trace::to_jsonl` verbatim after the spec's trace/v2 header
            // — the bit-identity contract extends to streamed traces
            // (DESIGN.md §11) and therefore to their cached copies, and
            // both wire forms share this one execution path so their
            // documents cannot diverge.
            let (metrics, jsonl) = scenario.run_traced();
            inner.metrics.record_run(&metrics);
            let mut document = header;
            document.push_str(&jsonl);
            let body = Arc::new(document.into_bytes());
            inner.cache.insert(key, Arc::clone(&body));
            Body::Shared(body)
        }
    }
}

/// Concatenates resolved slots into a body; a single slot is served
/// zero-copy straight from its (cache-shared) line.
fn stitch(mut parts: Vec<Option<Arc<Vec<u8>>>>) -> Body {
    if parts.len() == 1 {
        return Body::Shared(parts.pop().flatten().expect("slot resolved"));
    }
    let total = parts
        .iter()
        .map(|p| p.as_ref().map_or(0, |line| line.len()))
        .sum();
    let mut body = Vec::with_capacity(total);
    for part in parts {
        body.extend_from_slice(&part.expect("slot resolved"));
    }
    Body::Owned(body)
}

fn acceptor_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    active: &Arc<AtomicUsize>,
    mode: &AcceptMode,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    #[cfg(target_os = "linux")]
    let mut next_shard = 0usize;
    while !inner.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if active.load(Ordering::Relaxed) >= inner.config.max_connections {
                    // Best-effort refusal: a fresh socket's send buffer
                    // always has room for ~100 bytes.
                    let mut refused =
                        Response::error(503, "connection_limit", "connection limit reached");
                    refused.close = true;
                    let mut stream = stream;
                    let _ = stream.set_nonblocking(false);
                    let _ = refused.write_to(&mut stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                match mode {
                    AcceptMode::Threaded => {
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        active.fetch_add(1, Ordering::Relaxed);
                        let handler = {
                            let inner = Arc::clone(inner);
                            let active = Arc::clone(active);
                            std::thread::Builder::new()
                                .name("gather-serve-conn".to_string())
                                .spawn(move || {
                                    let _ = connection_loop(&inner, stream);
                                    active.fetch_sub(1, Ordering::Relaxed);
                                })
                        };
                        match handler {
                            Ok(handle) => {
                                let mut guard = conns.lock().unwrap_or_else(|e| e.into_inner());
                                guard.retain(|h| !h.is_finished());
                                guard.push(handle);
                            }
                            Err(_) => {
                                active.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                    }
                    #[cfg(target_os = "linux")]
                    AcceptMode::Epoll(handles) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        active.fetch_add(1, Ordering::Relaxed);
                        handles[next_shard % handles.len()].push_conn(stream);
                        next_shard = next_shard.wrapping_add(1);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Maps a request-parse failure onto its error response, counting it.
/// `None` for non-timeout transport errors (close without a response).
pub(crate) fn http_error_response(inner: &Inner, err: &HttpError) -> Option<Response> {
    let malformed = || {
        inner
            .metrics
            .rejected_malformed
            .fetch_add(1, Ordering::Relaxed);
    };
    match err {
        HttpError::Malformed(msg) => {
            malformed();
            Some(Response::error(400, "malformed_request", msg))
        }
        HttpError::TooLarge(what) => {
            malformed();
            Some(Response::error(413, "too_large", what))
        }
        HttpError::HeadersTooLarge => {
            malformed();
            Some(Response::error(
                431,
                "headers_too_large",
                "request head exceeds the total header-byte limit",
            ))
        }
        HttpError::Io(e) if is_timeout(e) => Some(Response::error(
            408,
            "read_timeout",
            "request read deadline exceeded",
        )),
        HttpError::Io(_) => None,
    }
}

/// The thread-per-connection engine's handler loop (also the portable
/// fallback when epoll is unavailable or disabled).
fn connection_loop(inner: &Inner, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let idle_timeout = Duration::from_millis(inner.config.idle_timeout_ms);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    loop {
        // Idle-poll between requests: wait for the first byte with a short
        // timeout so shutdown closes idle keep-alive connections promptly
        // and the idle bound is enforced. `fill_buf` consumes nothing, so
        // a timeout here loses no data.
        let idle_since = Instant::now();
        loop {
            if inner.is_shutting_down() {
                return Ok(());
            }
            if idle_since.elapsed() >= idle_timeout {
                return Ok(()); // idle bound: close silently
            }
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // clean EOF
                Ok(_) => break,
                Err(e) if is_timeout(&e) => continue,
                Err(e) => return Err(e),
            }
        }
        // A request has begun: switch to the slow-client budget for the
        // rest of its bytes.
        stream.set_read_timeout(Some(Duration::from_millis(inner.config.read_timeout_ms)))?;
        let outcome = http::read_request(&mut reader, inner.config.max_body_bytes);
        stream.set_read_timeout(Some(IDLE_POLL))?;
        let (mut response, keep_alive) = match outcome {
            Ok(None) => return Ok(()),
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive;
                let (tx, rx) = mpsc::sync_channel(1);
                let response = match route(inner, &request, Replier::Sync(tx)) {
                    Routed::Now(response) => response,
                    // The dispatcher replies to every admitted job (drain
                    // semantics), so a plain recv is safe; a dead
                    // dispatcher surfaces as a channel disconnect.
                    Routed::Queued(pending) => match rx.recv() {
                        Ok(reply) => reply_to_response(inner, &pending, reply),
                        Err(_) => {
                            Response::error(500, "dispatcher_unavailable", "dispatcher unavailable")
                        }
                    },
                };
                (response, keep_alive)
            }
            Err(err) => match http_error_response(inner, &err) {
                Some(response) => (response, false),
                None => {
                    let HttpError::Io(e) = err else {
                        unreachable!()
                    };
                    return Err(e);
                }
            },
        };
        if !keep_alive {
            response.close = true;
        }
        response.write_to(&mut writer)?;
        if response.close {
            return Ok(());
        }
    }
}

/// Builds the final response for a delivered [`Reply`] (shared by both
/// engines so they frame identically).
pub(crate) fn reply_to_response(inner: &Inner, pending: &Pending, reply: Reply) -> Response {
    let mut response = match reply {
        Reply::Done(body) => {
            inner.metrics.record_latency(pending.started.elapsed());
            let mut response = Response::new(200, "application/x-ndjson", body);
            response.chunked = pending.chunked;
            response.cache = pending.cache_tag;
            response
        }
        Reply::Expired => Response::error(
            504,
            "deadline_exceeded",
            "queue-wait deadline exceeded before execution started",
        ),
        Reply::Failed(msg) => Response::error(
            500,
            "execution_panicked",
            &format!("scenario execution panicked: {msg}"),
        ),
    };
    response.deprecation = pending.deprecation;
    response
}

pub(crate) fn route(inner: &Inner, request: &Request, replier: Replier) -> Routed {
    // `/v1/...` is the versioned surface; the un-prefixed paths predate it
    // and remain as aliases that answer with a `Deprecation` header.
    // `/v1/trace` and `/v1/batch` are /v1-native with no legacy alias.
    let (path, legacy) = match request.path.strip_prefix("/v1") {
        Some(rest) => (rest, false),
        None => (request.path.as_str(), true),
    };
    let mut routed = match (request.method.as_str(), path) {
        ("GET", "/healthz") => Routed::Now(Response::new(200, "text/plain", "ok\n")),
        ("GET", "/metrics") => {
            let counters = inner.cache.counters();
            let cache_view = (!inner.cache.disabled()).then_some(&counters);
            Routed::Now(Response::new(
                200,
                "text/plain; version=0.0.4",
                inner.metrics.render(
                    inner.queue.len(),
                    inner.queue.capacity(),
                    Some(&inner.pool_obs),
                    cache_view,
                ),
            ))
        }
        ("POST", "/run") => run_route(inner, request, replier, legacy, false),
        ("POST", "/batch") if !legacy => crate::batch_api::batch_route(inner, request, replier),
        ("GET" | "POST", "/trace") if !legacy => trace_route(inner, request, replier),
        (_, "/trace") if !legacy => Routed::Now(Response::error(
            405,
            "method_not_allowed",
            "method not allowed (traces come from POST /v1/trace; the \
             query-param GET form is deprecated)",
        )),
        (_, "/batch") if !legacy => Routed::Now(Response::error(
            405,
            "method_not_allowed",
            "method not allowed (scenario batches go to POST /v1/batch)",
        )),
        (_, "/run") | (_, "/metrics") | (_, "/healthz") => Routed::Now(Response::error(
            405,
            "method_not_allowed",
            "method not allowed (scenarios go to POST /v1/run)",
        )),
        _ => Routed::Now(Response::error(
            404,
            "not_found",
            "unknown path; try POST /v1/run, POST /v1/batch, POST /v1/trace, \
             GET /v1/metrics, GET /v1/healthz",
        )),
    };
    if legacy && matches!(path, "/run" | "/metrics" | "/healthz") {
        if let Routed::Now(response) = &mut routed {
            response.deprecation = true;
        }
        // Queued requests carry the flag in their Pending context.
    }
    routed
}

/// Shared `POST /v1/run` / `POST /v1/batch` admission: parse, validate,
/// resolve each spec against the result cache, answer all-hit requests
/// immediately, queue the rest.
pub(crate) fn run_route(
    inner: &Inner,
    request: &Request,
    replier: Replier,
    legacy: bool,
    batch: bool,
) -> Routed {
    let started = Instant::now();
    if inner.is_shutting_down() {
        inner
            .metrics
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        return Routed::Now(Response::error(
            503,
            "shutting_down",
            "server is shutting down",
        ));
    }
    let reject = |msg: &str| {
        inner
            .metrics
            .rejected_malformed
            .fetch_add(1, Ordering::Relaxed);
        Routed::Now(Response::error(400, "bad_spec", msg))
    };
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return reject("body is not UTF-8"),
    };
    let max_batch = if batch {
        inner.config.max_mega_batch
    } else {
        inner.config.max_batch
    };
    let parsed = match RunRequest::parse(body, max_batch) {
        Ok(parsed) => parsed,
        Err(e) => return reject(&e),
    };
    let mut slots = Vec::with_capacity(parsed.scenarios.len());
    let mut misses = 0usize;
    let mut min_age = u64::MAX;
    for (i, spec) in parsed.scenarios.iter().enumerate() {
        let key = cache::spec_key(spec, KeyKind::Run);
        match inner.cache.lookup(key) {
            Some(hit) => {
                min_age = min_age.min(hit.age_secs);
                slots.push(RunSlot::Hit(hit.payload));
            }
            // A payload only enters the cache after a successful run, so
            // every hit's spec already passed `to_scenario` — validation
            // is only needed (and only possible to fail) on misses.
            None => match spec.to_scenario() {
                Ok(scenario) => {
                    misses += 1;
                    slots.push(RunSlot::Miss { key, scenario });
                }
                Err(e) => return reject(&format!("scenario[{i}]: {e}")),
            },
        }
    }
    inner.metrics.phases.parse.record(elapsed_ns(started));
    if misses == 0 {
        // Every slot was cached: answer at admission time — no queue slot,
        // no dispatcher, no pool. Completion counters and the latency ring
        // still see the request; the admission counter does not (nothing
        // was admitted to the queue).
        inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
        inner.metrics.record_latency(started.elapsed());
        let mut response = Response::new(200, "application/x-ndjson", stitch_hits(slots));
        response.cache = Some("hit");
        response.age = Some(min_age);
        return Routed::Now(response);
    }
    let deadline_ms = parsed
        .deadline_ms
        .unwrap_or(inner.config.default_deadline_ms);
    admit(
        inner,
        Work::Run { slots, batch },
        deadline_ms,
        Pending {
            chunked: false,
            deprecation: legacy,
            cache_tag: (!inner.cache.disabled()).then_some("miss"),
            started,
        },
        replier,
    )
}

/// Concatenates all-hit slots (zero-copy for a single spec).
fn stitch_hits(mut slots: Vec<RunSlot>) -> Body {
    let line_of = |slot: RunSlot| match slot {
        RunSlot::Hit(line) => line,
        RunSlot::Miss { .. } => unreachable!("all-hit stitching"),
    };
    if slots.len() == 1 {
        return Body::Shared(line_of(slots.pop().expect("one slot")));
    }
    let mut body = Vec::new();
    for slot in slots {
        body.extend_from_slice(&line_of(slot));
    }
    Body::Owned(body)
}

/// Shared `/v1/trace` admission for both wire forms. `POST` carries the
/// same JSON `ScenarioSpec` body as `/v1/run` (one `from_json`
/// validator); the query-param `GET` encoding predates it and is
/// deprecated — it routes through this same handler (and the same cache
/// key, so the two forms are byte-identical by construction) but every
/// answer carries a `Deprecation` header.
fn trace_route(inner: &Inner, request: &Request, replier: Replier) -> Routed {
    let started = Instant::now();
    if inner.is_shutting_down() {
        inner
            .metrics
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        return Routed::Now(Response::error(
            503,
            "shutting_down",
            "server is shutting down",
        ));
    }
    let reject = |msg: &str| {
        inner
            .metrics
            .rejected_malformed
            .fetch_add(1, Ordering::Relaxed);
        Routed::Now(Response::error(400, "bad_spec", msg))
    };
    let deprecated = request.method == "GET";
    let parsed = if deprecated {
        ScenarioSpec::from_query(&request.query)
    } else {
        match std::str::from_utf8(&request.body) {
            Ok(body) => crate::json::Json::parse(body)
                .map_err(|e| format!("invalid JSON: {e}"))
                .and_then(|v| ScenarioSpec::from_json(&v)),
            Err(_) => Err("body is not UTF-8".to_string()),
        }
    };
    let spec = match parsed {
        Ok(spec) => spec,
        Err(e) => return reject(&e),
    };
    if spec.max_rounds > TRACE_MAX_ROUNDS {
        return reject(&format!(
            "\"max_rounds\" must be <= {TRACE_MAX_ROUNDS} for a traced run \
             (every round becomes a response line), got {}",
            spec.max_rounds
        ));
    }
    let key = cache::spec_key(&spec, KeyKind::Trace);
    if let Some(hit) = inner.cache.lookup(key) {
        inner.metrics.phases.parse.record(elapsed_ns(started));
        inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
        inner.metrics.record_latency(started.elapsed());
        let mut response = Response::new(200, "application/x-ndjson", Body::Shared(hit.payload));
        response.chunked = true;
        response.cache = Some("hit");
        response.age = Some(hit.age_secs);
        response.deprecation = deprecated;
        return Routed::Now(response);
    }
    let scenario = match spec.to_scenario() {
        Ok(scenario) => Box::new(scenario),
        Err(e) => return reject(&e),
    };
    let header = spec.trace_header();
    inner.metrics.phases.parse.record(elapsed_ns(started));
    admit(
        inner,
        Work::Trace {
            key,
            scenario,
            header,
        },
        inner.config.default_deadline_ms,
        Pending {
            chunked: true,
            deprecation: deprecated,
            cache_tag: (!inner.cache.disabled()).then_some("miss"),
            started,
        },
        replier,
    )
}

/// Shared admission tail: push the job (wait-free — a full queue answers
/// 429 *now* instead of buffering unboundedly) and hand back the pending
/// context; the dispatcher's reply arrives through `replier`.
fn admit(
    inner: &Inner,
    work: Work,
    deadline_ms: u64,
    pending: Pending,
    replier: Replier,
) -> Routed {
    let job = Job {
        work,
        deadline: pending.started + Duration::from_millis(deadline_ms),
        admitted: Instant::now(),
        reply: replier,
    };
    match inner.queue.try_push(job) {
        Err(Rejected::Full(_)) => {
            inner.metrics.rejected_full.fetch_add(1, Ordering::Relaxed);
            let mut response = Response::error(429, "queue_full", "admission queue is full");
            response.retry_after = Some(1);
            response.deprecation = pending.deprecation;
            Routed::Now(response)
        }
        Err(Rejected::Closed(_)) => {
            inner
                .metrics
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            Routed::Now(Response::error(
                503,
                "shutting_down",
                "server is shutting down",
            ))
        }
        Ok(()) => {
            inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            Routed::Queued(pending)
        }
    }
}
