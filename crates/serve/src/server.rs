//! The batch scenario server: acceptor, connection handlers, admission
//! queue and dispatcher.
//!
//! Thread architecture (all pure std):
//!
//! * **acceptor** — one thread on a non-blocking listener; spawns a
//!   handler thread per connection, capped at
//!   [`ServeConfig::max_connections`] (beyond the cap connections get an
//!   immediate 503, never an unbounded thread herd);
//! * **handlers** — parse HTTP/1.1 requests (keep-alive supported),
//!   validate specs, and *admit or reject immediately*: if the bounded
//!   queue is full the answer is 429 + `Retry-After` now, mirroring the
//!   paper's wait-free design point at the serving layer — no request
//!   ever waits on an unbounded buffer;
//! * **dispatcher** — one thread draining the queue; each job's scenario
//!   batch fans out over the server's persistent [`WorkerPool`], whose
//!   long-lived workers recycle [`EngineParts`] across requests via the
//!   runner's thread-local scratch (`runner::Scenario::run`);
//! * **shutdown** — [`Server::shutdown`] stops the acceptor, closes the
//!   queue (pushes refused, queued jobs drained), joins the dispatcher,
//!   shuts the pool down, and joins every handler. Admitted work always
//!   completes; idle keep-alive connections notice within the poll
//!   interval and close.
//!
//! Determinism contract (DESIGN.md §11): a `200` response body is the
//! concatenated [`RunMetrics::to_jsonl`] lines of the batch, in request
//! order. Scenario execution is a pure function of the spec, worker
//! recycling is observationally invisible, and the JSONL encoding is
//! byte-exact — so the response for a given body is bit-identical to
//! serialising the same scenarios run in-process, regardless of worker
//! count, interleaving, or server uptime.
//!
//! [`EngineParts`]: gather_sim::EngineParts

use crate::http::{self, HttpError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::queue::{Bounded, Rejected};
use crate::spec::{RunRequest, ScenarioSpec};
use gather_bench::pool::{self, PoolObs, WorkerPool};
use gather_bench::runner::Scenario;
use std::io::{self, BufRead, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle keep-alive handler wakes to check for shutdown.
const IDLE_POLL: Duration = Duration::from_millis(100);
/// Transport budget for reading one request once its first byte arrived
/// (slow-client guard; also bounds how long shutdown waits on a stuck
/// handler).
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Pause between accept attempts on the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Round-budget ceiling for `GET /v1/trace` — every round becomes one
/// response line, so traced runs get a tighter cap than `/v1/run`'s
/// [`crate::spec::MAX_ROUNDS`].
pub const TRACE_MAX_ROUNDS: u64 = 100_000;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker-pool threads (0 = `GATHER_THREADS` / available cores).
    pub workers: usize,
    /// Admission-queue capacity — the only buffering between admission
    /// and execution; beyond it requests are rejected with 429.
    pub queue_capacity: usize,
    /// Scenarios allowed per request.
    pub max_batch: usize,
    /// Request-body size limit in bytes.
    pub max_body_bytes: usize,
    /// Queue-wait deadline applied when a request carries none.
    pub default_deadline_ms: u64,
    /// Concurrent connections before new ones get an immediate 503.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 32,
            max_batch: 64,
            max_body_bytes: 1 << 20,
            default_deadline_ms: 30_000,
            max_connections: 128,
        }
    }
}

/// The dispatcher's answer to one admitted request.
enum Reply {
    /// 200: the concatenated JSONL body.
    Done(Vec<u8>),
    /// 504: the queue-wait deadline passed before execution started.
    Expired,
    /// 500: a scenario panicked (message included).
    Failed(String),
}

/// What the dispatcher executes for one admitted request.
enum Work {
    /// `POST /v1/run`: a scenario batch, answered with summary JSONL.
    Run(Vec<Scenario>),
    /// `GET /v1/trace`: one scenario, answered with its full per-round
    /// NDJSON trace.
    Trace(Scenario),
}

/// One admitted request.
struct Job {
    work: Work,
    /// Queue-wait deadline: checked when the dispatcher *pops* the job; a
    /// job that starts executing is never aborted mid-run.
    deadline: Instant,
    /// Admission time, feeding the queue-wait phase histogram.
    admitted: Instant,
    reply: mpsc::SyncSender<Reply>,
}

struct Inner {
    config: ServeConfig,
    queue: Bounded<Job>,
    pool: WorkerPool,
    /// Per-job pool histograms (the pool is built instrumented; recording
    /// is a few relaxed atomic increments per job).
    pool_obs: Arc<PoolObs>,
    metrics: ServerMetrics,
    shutting_down: AtomicBool,
}

/// A running scenario service. Dropping (or calling
/// [`shutdown`](Server::shutdown)) performs the full graceful-drain
/// sequence.
pub struct Server {
    inner: Arc<Inner>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    port: u16,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let port = listener.local_addr()?.port();
        let workers = if config.workers == 0 {
            pool::default_threads()
        } else {
            config.workers
        };
        let pool_obs = Arc::new(PoolObs::default());
        let inner = Arc::new(Inner {
            queue: Bounded::new(config.queue_capacity),
            pool: WorkerPool::new_instrumented(workers, Arc::clone(&pool_obs)),
            pool_obs,
            metrics: ServerMetrics::default(),
            shutting_down: AtomicBool::new(false),
            config,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gather-serve-dispatch".to_string())
                .spawn(move || dispatcher_loop(&inner))?
        };
        let acceptor = {
            let inner = Arc::clone(&inner);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("gather-serve-accept".to_string())
                .spawn(move || acceptor_loop(&inner, &listener, &conns))?
        };
        Ok(Server {
            inner,
            conns,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
            port,
        })
    }

    /// The bound port (useful with an ephemeral bind).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// `host:port` of the listening socket.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// The server's counters (also served at `GET /metrics`).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.inner.metrics
    }

    /// Gracefully shuts down: refuse new work, drain admitted work, join
    /// every thread. Blocks until the drain completes.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Ordering matters: flag first (new POSTs answer 503 and idle
        // handlers begin closing), then stop accepting, then close the
        // queue so the dispatcher drains admitted jobs and exits, then the
        // pool (nothing submits to it once the dispatcher is gone), and
        // only then join handlers — they all unblock once their replies
        // arrive.
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.inner.queue.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        self.inner.pool.shutdown();
        let handlers = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Nanoseconds since `since`, saturated into a histogram-friendly `u64`.
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

fn dispatcher_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        inner
            .metrics
            .phases
            .queue_wait
            .record(elapsed_ns(job.admitted));
        if Instant::now() >= job.deadline {
            inner.metrics.expired.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Reply::Expired);
            continue;
        }
        // A panicking scenario (an invariant violation, which validated
        // specs should never trigger) must cost that request a 500, not
        // the whole service — `run_batch` re-panics here after draining,
        // and the pool stays usable for the next job.
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(inner, &job.work)));
        inner.metrics.phases.execute.record(elapsed_ns(started));
        let reply = match outcome {
            Ok(body) => {
                inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
                Reply::Done(body)
            }
            Err(payload) => {
                inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                Reply::Failed(panic_message(payload))
            }
        };
        // A handler that gave up is gone with its receiver; nothing to do.
        let _ = job.reply.send(reply);
    }
}

/// Runs one job's work on the pool and renders the 200 body.
fn execute(inner: &Inner, work: &Work) -> Vec<u8> {
    match work {
        Work::Run(scenarios) => {
            let runs = inner.pool.map(scenarios, |s| s.run());
            let mut body = String::with_capacity(runs.len() * 256);
            for metrics in &runs {
                inner.metrics.record_run(metrics);
                body.push_str(&metrics.to_jsonl());
                body.push('\n');
            }
            body.into_bytes()
        }
        Work::Trace(scenario) => {
            // A single-item batch on the pool, so a traced run recycles
            // worker-thread engine scratch exactly like a summarised one.
            // The body is `Trace::to_jsonl` verbatim — the bit-identity
            // contract extends to streamed traces (DESIGN.md §11).
            let mut results = inner
                .pool
                .map(std::slice::from_ref(scenario), |s| s.run_traced());
            let (metrics, jsonl) = results.pop().expect("one traced scenario in, one out");
            inner.metrics.record_run(&metrics);
            jsonl.into_bytes()
        }
    }
}

fn acceptor_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let active = Arc::new(AtomicUsize::new(0));
    while !inner.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if active.load(Ordering::Relaxed) >= inner.config.max_connections {
                    let mut refused =
                        Response::error(503, "connection_limit", "connection limit reached");
                    refused.close = true;
                    let mut stream = stream;
                    let _ = refused.write_to(&mut stream);
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let handler = {
                    let inner = Arc::clone(inner);
                    let active = Arc::clone(&active);
                    std::thread::Builder::new()
                        .name("gather-serve-conn".to_string())
                        .spawn(move || {
                            let _ = connection_loop(&inner, stream);
                            active.fetch_sub(1, Ordering::Relaxed);
                        })
                };
                if let Ok(handle) = handler {
                    let mut guard = conns.lock().unwrap_or_else(|e| e.into_inner());
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn connection_loop(inner: &Inner, stream: TcpStream) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    loop {
        // Idle-poll between requests: wait for the first byte with a short
        // timeout so shutdown closes idle keep-alive connections promptly.
        // `fill_buf` consumes nothing, so a timeout here loses no data.
        loop {
            if inner.shutting_down.load(Ordering::SeqCst) {
                return Ok(());
            }
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // clean EOF
                Ok(_) => break,
                Err(e) if is_timeout(&e) => continue,
                Err(e) => return Err(e),
            }
        }
        // A request has begun: switch to the slow-client budget for the
        // rest of its bytes.
        stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT))?;
        let outcome = http::read_request(&mut reader, inner.config.max_body_bytes);
        stream.set_read_timeout(Some(IDLE_POLL))?;
        let (mut response, keep_alive) = match outcome {
            Ok(None) => return Ok(()),
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive;
                (route(inner, &request), keep_alive)
            }
            Err(HttpError::Malformed(msg)) => {
                inner
                    .metrics
                    .rejected_malformed
                    .fetch_add(1, Ordering::Relaxed);
                (Response::error(400, "malformed_request", &msg), false)
            }
            Err(HttpError::TooLarge(what)) => {
                inner
                    .metrics
                    .rejected_malformed
                    .fetch_add(1, Ordering::Relaxed);
                (Response::error(413, "too_large", what), false)
            }
            Err(HttpError::Io(e)) => return Err(e),
        };
        if !keep_alive {
            response.close = true;
        }
        response.write_to(&mut writer)?;
        if response.close {
            return Ok(());
        }
    }
}

fn route(inner: &Inner, request: &Request) -> Response {
    // `/v1/...` is the versioned surface; the un-prefixed paths predate it
    // and remain as aliases that answer with a `Deprecation` header.
    let (path, legacy) = match request.path.strip_prefix("/v1") {
        Some(rest) => (rest, false),
        None => (request.path.as_str(), true),
    };
    let mut response = match (request.method.as_str(), path) {
        ("GET", "/healthz") => Response::new(200, "text/plain", "ok\n"),
        ("GET", "/metrics") => Response::new(
            200,
            "text/plain; version=0.0.4",
            inner.metrics.render(
                inner.queue.len(),
                inner.queue.capacity(),
                Some(&inner.pool_obs),
            ),
        ),
        ("POST", "/run") => run_route(inner, request),
        ("GET", "/trace") if !legacy => trace_route(inner, request),
        (_, "/trace") if !legacy => Response::error(
            405,
            "method_not_allowed",
            "method not allowed (traces come from GET /v1/trace)",
        ),
        (_, "/run") | (_, "/metrics") | (_, "/healthz") => Response::error(
            405,
            "method_not_allowed",
            "method not allowed (scenarios go to POST /v1/run)",
        ),
        _ => Response::error(
            404,
            "not_found",
            "unknown path; try POST /v1/run, GET /v1/trace, GET /v1/metrics, GET /v1/healthz",
        ),
    };
    if legacy && matches!(path, "/run" | "/metrics" | "/healthz") {
        response.deprecation = true;
    }
    response
}

fn run_route(inner: &Inner, request: &Request) -> Response {
    let started = Instant::now();
    if inner.shutting_down.load(Ordering::SeqCst) {
        inner
            .metrics
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        return Response::error(503, "shutting_down", "server is shutting down");
    }
    let reject = |msg: &str| {
        inner
            .metrics
            .rejected_malformed
            .fetch_add(1, Ordering::Relaxed);
        Response::error(400, "bad_spec", msg)
    };
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return reject("body is not UTF-8"),
    };
    let parsed = match RunRequest::parse(body, inner.config.max_batch) {
        Ok(parsed) => parsed,
        Err(e) => return reject(&e),
    };
    let scenarios: Vec<Scenario> = match parsed
        .scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_scenario().map_err(|e| format!("scenario[{i}]: {e}")))
        .collect()
    {
        Ok(scenarios) => scenarios,
        Err(e) => return reject(&e),
    };
    let deadline_ms = parsed
        .deadline_ms
        .unwrap_or(inner.config.default_deadline_ms);
    admit(inner, started, Work::Run(scenarios), deadline_ms, false)
}

fn trace_route(inner: &Inner, request: &Request) -> Response {
    let started = Instant::now();
    if inner.shutting_down.load(Ordering::SeqCst) {
        inner
            .metrics
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        return Response::error(503, "shutting_down", "server is shutting down");
    }
    let reject = |msg: &str| {
        inner
            .metrics
            .rejected_malformed
            .fetch_add(1, Ordering::Relaxed);
        Response::error(400, "bad_spec", msg)
    };
    let spec = match ScenarioSpec::from_query(&request.query) {
        Ok(spec) => spec,
        Err(e) => return reject(&e),
    };
    if spec.max_rounds > TRACE_MAX_ROUNDS {
        return reject(&format!(
            "\"max_rounds\" must be <= {TRACE_MAX_ROUNDS} for a traced run \
             (every round becomes a response line), got {}",
            spec.max_rounds
        ));
    }
    let scenario = match spec.to_scenario() {
        Ok(scenario) => scenario,
        Err(e) => return reject(&e),
    };
    admit(
        inner,
        started,
        Work::Trace(scenario),
        inner.config.default_deadline_ms,
        true,
    )
}

/// Shared admission tail of `run_route`/`trace_route`: record the parse
/// phase, push the job (wait-free: a full queue answers 429 *now* instead
/// of buffering unboundedly), and block on the dispatcher's reply.
fn admit(inner: &Inner, started: Instant, work: Work, deadline_ms: u64, chunked: bool) -> Response {
    inner.metrics.phases.parse.record(elapsed_ns(started));
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job {
        work,
        deadline: started + Duration::from_millis(deadline_ms),
        admitted: Instant::now(),
        reply: tx,
    };
    match inner.queue.try_push(job) {
        Err(Rejected::Full(_)) => {
            inner.metrics.rejected_full.fetch_add(1, Ordering::Relaxed);
            let mut response = Response::error(429, "queue_full", "admission queue is full");
            response.retry_after = Some(1);
            response
        }
        Err(Rejected::Closed(_)) => {
            inner
                .metrics
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            Response::error(503, "shutting_down", "server is shutting down")
        }
        Ok(()) => {
            inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            // The dispatcher replies to every admitted job (drain
            // semantics), so a plain recv is safe; a dead dispatcher
            // surfaces as a channel disconnect, not a hang.
            match rx.recv() {
                Ok(Reply::Done(body)) => {
                    inner.metrics.record_latency(started.elapsed());
                    let mut response = Response::new(200, "application/x-ndjson", body);
                    response.chunked = chunked;
                    response
                }
                Ok(Reply::Expired) => Response::error(
                    504,
                    "deadline_exceeded",
                    "queue-wait deadline exceeded before execution started",
                ),
                Ok(Reply::Failed(msg)) => Response::error(
                    500,
                    "execution_panicked",
                    &format!("scenario execution panicked: {msg}"),
                ),
                Err(_) => Response::error(500, "dispatcher_unavailable", "dispatcher unavailable"),
            }
        }
    }
}
