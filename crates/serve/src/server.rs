//! The batch scenario server: acceptor, connection handlers, admission
//! queue and dispatcher.
//!
//! Thread architecture (all pure std):
//!
//! * **acceptor** — one thread on a non-blocking listener; spawns a
//!   handler thread per connection, capped at
//!   [`ServeConfig::max_connections`] (beyond the cap connections get an
//!   immediate 503, never an unbounded thread herd);
//! * **handlers** — parse HTTP/1.1 requests (keep-alive supported),
//!   validate specs, and *admit or reject immediately*: if the bounded
//!   queue is full the answer is 429 + `Retry-After` now, mirroring the
//!   paper's wait-free design point at the serving layer — no request
//!   ever waits on an unbounded buffer;
//! * **dispatcher** — one thread draining the queue; each job's scenario
//!   batch fans out over the server's persistent [`WorkerPool`], whose
//!   long-lived workers recycle [`EngineParts`] across requests via the
//!   runner's thread-local scratch (`runner::Scenario::run`);
//! * **shutdown** — [`Server::shutdown`] stops the acceptor, closes the
//!   queue (pushes refused, queued jobs drained), joins the dispatcher,
//!   shuts the pool down, and joins every handler. Admitted work always
//!   completes; idle keep-alive connections notice within the poll
//!   interval and close.
//!
//! Determinism contract (DESIGN.md §11): a `200` response body is the
//! concatenated [`RunMetrics::to_jsonl`] lines of the batch, in request
//! order. Scenario execution is a pure function of the spec, worker
//! recycling is observationally invisible, and the JSONL encoding is
//! byte-exact — so the response for a given body is bit-identical to
//! serialising the same scenarios run in-process, regardless of worker
//! count, interleaving, or server uptime.
//!
//! [`EngineParts`]: gather_sim::EngineParts

use crate::http::{self, HttpError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::queue::{Bounded, Rejected};
use crate::spec::RunRequest;
use gather_bench::pool::{self, WorkerPool};
use gather_bench::runner::Scenario;
use std::io::{self, BufRead, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle keep-alive handler wakes to check for shutdown.
const IDLE_POLL: Duration = Duration::from_millis(100);
/// Transport budget for reading one request once its first byte arrived
/// (slow-client guard; also bounds how long shutdown waits on a stuck
/// handler).
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Pause between accept attempts on the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker-pool threads (0 = `GATHER_THREADS` / available cores).
    pub workers: usize,
    /// Admission-queue capacity — the only buffering between admission
    /// and execution; beyond it requests are rejected with 429.
    pub queue_capacity: usize,
    /// Scenarios allowed per request.
    pub max_batch: usize,
    /// Request-body size limit in bytes.
    pub max_body_bytes: usize,
    /// Queue-wait deadline applied when a request carries none.
    pub default_deadline_ms: u64,
    /// Concurrent connections before new ones get an immediate 503.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 32,
            max_batch: 64,
            max_body_bytes: 1 << 20,
            default_deadline_ms: 30_000,
            max_connections: 128,
        }
    }
}

/// The dispatcher's answer to one admitted request.
enum Reply {
    /// 200: the concatenated JSONL body.
    Done(Vec<u8>),
    /// 504: the queue-wait deadline passed before execution started.
    Expired,
    /// 500: a scenario panicked (message included).
    Failed(String),
}

/// One admitted request.
struct Job {
    scenarios: Vec<Scenario>,
    /// Queue-wait deadline: checked when the dispatcher *pops* the job; a
    /// job that starts executing is never aborted mid-run.
    deadline: Instant,
    reply: mpsc::SyncSender<Reply>,
}

struct Inner {
    config: ServeConfig,
    queue: Bounded<Job>,
    pool: WorkerPool,
    metrics: ServerMetrics,
    shutting_down: AtomicBool,
}

/// A running scenario service. Dropping (or calling
/// [`shutdown`](Server::shutdown)) performs the full graceful-drain
/// sequence.
pub struct Server {
    inner: Arc<Inner>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    port: u16,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let port = listener.local_addr()?.port();
        let workers = if config.workers == 0 {
            pool::default_threads()
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            queue: Bounded::new(config.queue_capacity),
            pool: WorkerPool::new(workers),
            metrics: ServerMetrics::default(),
            shutting_down: AtomicBool::new(false),
            config,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gather-serve-dispatch".to_string())
                .spawn(move || dispatcher_loop(&inner))?
        };
        let acceptor = {
            let inner = Arc::clone(&inner);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("gather-serve-accept".to_string())
                .spawn(move || acceptor_loop(&inner, &listener, &conns))?
        };
        Ok(Server {
            inner,
            conns,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
            port,
        })
    }

    /// The bound port (useful with an ephemeral bind).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// `host:port` of the listening socket.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// The server's counters (also served at `GET /metrics`).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.inner.metrics
    }

    /// Gracefully shuts down: refuse new work, drain admitted work, join
    /// every thread. Blocks until the drain completes.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Ordering matters: flag first (new POSTs answer 503 and idle
        // handlers begin closing), then stop accepting, then close the
        // queue so the dispatcher drains admitted jobs and exits, then the
        // pool (nothing submits to it once the dispatcher is gone), and
        // only then join handlers — they all unblock once their replies
        // arrive.
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.inner.queue.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        self.inner.pool.shutdown();
        let handlers = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn dispatcher_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        if Instant::now() >= job.deadline {
            inner.metrics.expired.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Reply::Expired);
            continue;
        }
        // A panicking scenario (an invariant violation, which validated
        // specs should never trigger) must cost that request a 500, not
        // the whole service — `run_batch` re-panics here after draining,
        // and the pool stays usable for the next job.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            inner.pool.map(&job.scenarios, |s| s.run())
        }));
        let reply = match outcome {
            Ok(runs) => {
                let mut body = String::with_capacity(runs.len() * 256);
                for metrics in &runs {
                    inner.metrics.record_run(metrics);
                    body.push_str(&metrics.to_jsonl());
                    body.push('\n');
                }
                inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
                Reply::Done(body.into_bytes())
            }
            Err(payload) => {
                inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                Reply::Failed(panic_message(payload))
            }
        };
        // A handler that gave up is gone with its receiver; nothing to do.
        let _ = job.reply.send(reply);
    }
}

fn acceptor_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let active = Arc::new(AtomicUsize::new(0));
    while !inner.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if active.load(Ordering::Relaxed) >= inner.config.max_connections {
                    let mut refused = Response::json_error(503, "connection limit reached");
                    refused.close = true;
                    let mut stream = stream;
                    let _ = refused.write_to(&mut stream);
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let handler = {
                    let inner = Arc::clone(inner);
                    let active = Arc::clone(&active);
                    std::thread::Builder::new()
                        .name("gather-serve-conn".to_string())
                        .spawn(move || {
                            let _ = connection_loop(&inner, stream);
                            active.fetch_sub(1, Ordering::Relaxed);
                        })
                };
                if let Ok(handle) = handler {
                    let mut guard = conns.lock().unwrap_or_else(|e| e.into_inner());
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn connection_loop(inner: &Inner, stream: TcpStream) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    loop {
        // Idle-poll between requests: wait for the first byte with a short
        // timeout so shutdown closes idle keep-alive connections promptly.
        // `fill_buf` consumes nothing, so a timeout here loses no data.
        loop {
            if inner.shutting_down.load(Ordering::SeqCst) {
                return Ok(());
            }
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // clean EOF
                Ok(_) => break,
                Err(e) if is_timeout(&e) => continue,
                Err(e) => return Err(e),
            }
        }
        // A request has begun: switch to the slow-client budget for the
        // rest of its bytes.
        stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT))?;
        let outcome = http::read_request(&mut reader, inner.config.max_body_bytes);
        stream.set_read_timeout(Some(IDLE_POLL))?;
        let (mut response, keep_alive) = match outcome {
            Ok(None) => return Ok(()),
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive;
                (route(inner, &request), keep_alive)
            }
            Err(HttpError::Malformed(msg)) => {
                inner
                    .metrics
                    .rejected_malformed
                    .fetch_add(1, Ordering::Relaxed);
                (Response::json_error(400, &msg), false)
            }
            Err(HttpError::TooLarge(what)) => {
                inner
                    .metrics
                    .rejected_malformed
                    .fetch_add(1, Ordering::Relaxed);
                (Response::json_error(413, what), false)
            }
            Err(HttpError::Io(e)) => return Err(e),
        };
        if !keep_alive {
            response.close = true;
        }
        response.write_to(&mut writer)?;
        if response.close {
            return Ok(());
        }
    }
}

fn route(inner: &Inner, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::new(200, "text/plain", "ok\n"),
        ("GET", "/metrics") => Response::new(
            200,
            "text/plain; version=0.0.4",
            inner
                .metrics
                .render(inner.queue.len(), inner.queue.capacity()),
        ),
        ("POST", "/run") => run_route(inner, request),
        (_, "/run") | (_, "/metrics") | (_, "/healthz") => {
            Response::json_error(405, "method not allowed (scenarios go to POST /run)")
        }
        _ => Response::json_error(
            404,
            "unknown path; try POST /run, GET /metrics, GET /healthz",
        ),
    }
}

fn run_route(inner: &Inner, request: &Request) -> Response {
    let started = Instant::now();
    if inner.shutting_down.load(Ordering::SeqCst) {
        inner
            .metrics
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        return Response::json_error(503, "server is shutting down");
    }
    let reject = |msg: &str| {
        inner
            .metrics
            .rejected_malformed
            .fetch_add(1, Ordering::Relaxed);
        Response::json_error(400, msg)
    };
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return reject("body is not UTF-8"),
    };
    let parsed = match RunRequest::parse(body, inner.config.max_batch) {
        Ok(parsed) => parsed,
        Err(e) => return reject(&e),
    };
    let scenarios: Vec<Scenario> = match parsed
        .scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_scenario().map_err(|e| format!("scenario[{i}]: {e}")))
        .collect()
    {
        Ok(scenarios) => scenarios,
        Err(e) => return reject(&e),
    };
    let deadline_ms = parsed
        .deadline_ms
        .unwrap_or(inner.config.default_deadline_ms);
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job {
        scenarios,
        deadline: started + Duration::from_millis(deadline_ms),
        reply: tx,
    };
    match inner.queue.try_push(job) {
        Err(Rejected::Full(_)) => {
            // Wait-free admission: the queue is the only buffer, and it is
            // full — reject *now* instead of queueing unboundedly.
            inner.metrics.rejected_full.fetch_add(1, Ordering::Relaxed);
            let mut response = Response::json_error(429, "admission queue is full");
            response.retry_after = Some(1);
            response
        }
        Err(Rejected::Closed(_)) => {
            inner
                .metrics
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            Response::json_error(503, "server is shutting down")
        }
        Ok(()) => {
            inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            // The dispatcher replies to every admitted job (drain
            // semantics), so a plain recv is safe; a dead dispatcher
            // surfaces as a channel disconnect, not a hang.
            match rx.recv() {
                Ok(Reply::Done(body)) => {
                    inner.metrics.record_latency(started.elapsed());
                    Response::new(200, "application/x-ndjson", body)
                }
                Ok(Reply::Expired) => Response::json_error(
                    504,
                    "queue-wait deadline exceeded before execution started",
                ),
                Ok(Reply::Failed(msg)) => {
                    Response::json_error(500, &format!("scenario execution panicked: {msg}"))
                }
                Err(_) => Response::json_error(500, "dispatcher unavailable"),
            }
        }
    }
}
