//! The wire-level request model: JSON scenario specs, validated and
//! mapped onto [`gather_bench::runner::Scenario`].
//!
//! A spec is pure data — `(workload, class, n, seed, faults, algorithm,
//! scheduler, motion, delta, max_rounds, rigidity, speed_skew)` — and the
//! mapping to an initial
//! configuration goes through `gather_workloads::by_name`, so a served
//! run is *defined* to be the same pure function of its spec as an
//! in-process experiment run. That definition is what the bit-identity
//! contract (DESIGN.md §11) tests against.
//!
//! Validation is strict and total: unknown fields are rejected (a typoed
//! `"classs"` must not silently fall back to a default), every numeric
//! range is checked, and all failures surface as `Err` strings for the
//! server to turn into HTTP 400 — a malformed spec can never panic a
//! worker.

use crate::json::Json;
use gather_bench::factory;
use gather_bench::runner::Scenario;
use gather_config::Class;
use gather_workloads as workloads;

/// Largest admissible team size (a LOOK is Θ(n log n); this caps the cost
/// any single spec can demand from a worker).
pub const MAX_N: usize = 512;
/// Largest admissible round budget per scenario.
pub const MAX_ROUNDS: u64 = 500_000;
/// Longest admissible per-request deadline.
pub const MAX_DEADLINE_MS: u64 = 600_000;

/// The JSON fields a spec may carry.
const SPEC_FIELDS: [&str; 12] = [
    "workload",
    "class",
    "n",
    "seed",
    "faults",
    "algorithm",
    "scheduler",
    "motion",
    "delta",
    "max_rounds",
    "rigidity",
    "speed_skew",
];

/// One validated scenario specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Workload family (see [`workloads::WORKLOAD_NAMES`]).
    pub workload: String,
    /// Target class for the `"class"` workload.
    pub class: Option<Class>,
    /// Team size.
    pub n: usize,
    /// Seed for every randomised component.
    pub seed: u64,
    /// Crash faults to inject.
    pub faults: usize,
    /// Algorithm name (validated against [`factory::ALGORITHMS`]).
    pub algorithm: &'static str,
    /// Scheduler name (validated against [`factory::SCHEDULERS`], plus the
    /// `"async"` event-heap scheduler which lives outside the round-based
    /// table).
    pub scheduler: &'static str,
    /// Motion-adversary name (validated against [`factory::MOTIONS`]).
    pub motion: &'static str,
    /// Minimum movement step δ.
    pub delta: f64,
    /// Round budget.
    pub max_rounds: u64,
    /// Rigid motion (ASYNC only; non-rigid moves may stop early, δ floor).
    pub rigid: bool,
    /// Per-robot speed-multiplier spread (ASYNC only; 0 = uniform speeds).
    pub speed_skew: f64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        // Mirrors `Scenario::new`'s harness defaults.
        ScenarioSpec {
            workload: "class".to_string(),
            class: Some(Class::Asymmetric),
            n: 8,
            seed: 0,
            faults: 0,
            algorithm: "wait-free-gather",
            scheduler: "full",
            motion: "full",
            delta: 0.05,
            max_rounds: 60_000,
            rigid: true,
            speed_skew: 0.0,
        }
    }
}

/// Finds `name` in a static name table, returning the table's `'static`
/// entry (so [`Scenario`]'s `&'static str` fields can be populated from
/// owned JSON strings).
fn lookup(kind: &str, name: &str, table: &[&'static str]) -> Result<&'static str, String> {
    table
        .iter()
        .find(|&&t| t == name)
        .copied()
        .ok_or_else(|| format!("unknown {kind} {name:?}; known: {}", table.join(", ")))
}

fn field_u64(v: &Json, key: &str, max: u64) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => {
            let x = x
                .as_u64()
                .ok_or_else(|| format!("{key:?} must be a non-negative integer"))?;
            if x > max {
                return Err(format!("{key:?} must be <= {max}, got {x}"));
            }
            Ok(Some(x))
        }
    }
}

impl ScenarioSpec {
    /// Parses and validates one spec object.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint (unknown field, missing or
    /// out-of-range value, unknown name).
    pub fn from_json(v: &Json) -> Result<ScenarioSpec, String> {
        if !v.is_object() {
            return Err("a scenario spec must be a JSON object".to_string());
        }
        if let Json::Obj(members) = v {
            for (key, _) in members {
                if !SPEC_FIELDS.contains(&key.as_str()) {
                    return Err(format!(
                        "unknown spec field {key:?}; known: {}",
                        SPEC_FIELDS.join(", ")
                    ));
                }
            }
        }
        let mut spec = ScenarioSpec::default();
        if let Some(w) = v.get("workload") {
            spec.workload = w
                .as_str()
                .ok_or("\"workload\" must be a string")?
                .to_string();
            if !workloads::WORKLOAD_NAMES.contains(&spec.workload.as_str()) {
                return Err(format!(
                    "unknown workload {:?}; known: {}",
                    spec.workload,
                    workloads::WORKLOAD_NAMES.join(", ")
                ));
            }
            if spec.workload != "class" {
                spec.class = None;
            }
        }
        if let Some(c) = v.get("class") {
            let name = c.as_str().ok_or("\"class\" must be a string")?;
            spec.class =
                Some(Class::from_short_name(name).ok_or_else(|| {
                    format!("unknown class {name:?} (use B, M, L1W, L2W, QR, A)")
                })?);
        }
        if let Some(n) = field_u64(v, "n", MAX_N as u64)? {
            spec.n = n as usize;
        }
        if spec.n < 4 {
            return Err(format!("\"n\" must be in 4..={MAX_N}, got {}", spec.n));
        }
        if let Some(seed) = field_u64(v, "seed", u64::MAX)? {
            spec.seed = seed;
        }
        if let Some(faults) = field_u64(v, "faults", MAX_N as u64)? {
            spec.faults = faults as usize;
        }
        if spec.faults >= spec.n {
            return Err(format!(
                "\"faults\" must be < n (crashing everyone forfeits gathering), got {} of {}",
                spec.faults, spec.n
            ));
        }
        if let Some(a) = v.get("algorithm") {
            let name = a.as_str().ok_or("\"algorithm\" must be a string")?;
            spec.algorithm = lookup("algorithm", name, &factory::ALGORITHMS)?;
        }
        if let Some(s) = v.get("scheduler") {
            let name = s.as_str().ok_or("\"scheduler\" must be a string")?;
            // The event-heap engine is not a round-based `Scheduler`
            // implementation, so it is special-cased ahead of the table.
            spec.scheduler = if name == "async" {
                "async"
            } else {
                lookup("scheduler", name, &factory::SCHEDULERS)?
            };
        }
        if let Some(r) = v.get("rigidity") {
            let name = r.as_str().ok_or("\"rigidity\" must be a string")?;
            if spec.scheduler != "async" {
                return Err(format!(
                    "\"rigidity\" requires \"scheduler\":\"async\" (round-based \
                     schedulers delegate motion to the \"motion\" adversary), \
                     got scheduler {:?}",
                    spec.scheduler
                ));
            }
            spec.rigid = match name {
                "rigid" => true,
                "non-rigid" => false,
                other => {
                    return Err(format!(
                        "unknown rigidity {other:?}; known: rigid, non-rigid"
                    ))
                }
            };
        }
        if let Some(s) = v.get("speed_skew") {
            let s = s.as_f64().ok_or("\"speed_skew\" must be a number")?;
            if spec.scheduler != "async" {
                return Err(format!(
                    "\"speed_skew\" requires \"scheduler\":\"async\" (round-based \
                     schedulers have no per-robot speeds), got scheduler {:?}",
                    spec.scheduler
                ));
            }
            if !(0.0..=10.0).contains(&s) {
                return Err(format!("\"speed_skew\" must be in [0, 10], got {s}"));
            }
            spec.speed_skew = s;
        }
        if let Some(m) = v.get("motion") {
            let name = m.as_str().ok_or("\"motion\" must be a string")?;
            spec.motion = lookup("motion", name, &factory::MOTIONS)?;
        }
        if let Some(d) = v.get("delta") {
            let d = d.as_f64().ok_or("\"delta\" must be a number")?;
            if !(d > 0.0 && d <= 10.0) {
                return Err(format!("\"delta\" must be in (0, 10], got {d}"));
            }
            spec.delta = d;
        }
        if let Some(r) = field_u64(v, "max_rounds", MAX_ROUNDS)? {
            if r == 0 {
                return Err("\"max_rounds\" must be >= 1".to_string());
            }
            spec.max_rounds = r;
        }
        Ok(spec)
    }

    /// Parses a spec from URL query parameters (`n=12&class=QR&seed=3`) —
    /// the `GET /v1/trace` form of a spec. The query is rewritten as a
    /// JSON object and fed through [`ScenarioSpec::from_json`], so both
    /// wire forms share one validator; an empty query yields the defaults.
    ///
    /// # Errors
    ///
    /// Describes the first malformed pair or violated spec constraint.
    pub fn from_query(query: &str) -> Result<ScenarioSpec, String> {
        const STRING_FIELDS: [&str; 6] = [
            "workload",
            "class",
            "algorithm",
            "scheduler",
            "motion",
            "rigidity",
        ];
        use std::fmt::Write;
        let mut body = String::from("{");
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("query parameter {pair:?} is not key=value"))?;
            if !SPEC_FIELDS.contains(&key) {
                return Err(format!(
                    "unknown spec field {key:?}; known: {}",
                    SPEC_FIELDS.join(", ")
                ));
            }
            if body.len() > 1 {
                body.push(',');
            }
            if STRING_FIELDS.contains(&key) {
                write!(
                    body,
                    "\"{}\":\"{}\"",
                    crate::json::escape(key),
                    crate::json::escape(value)
                )
                .expect("write to String");
            } else {
                // Numeric fields go in raw; garbage fails JSON parsing.
                write!(body, "\"{}\":{value}", crate::json::escape(key)).expect("write to String");
            }
        }
        body.push('}');
        let v = Json::parse(&body).map_err(|e| format!("invalid query value: {e}"))?;
        ScenarioSpec::from_json(&v)
    }

    /// Materialises the spec into a runnable [`Scenario`] (generating the
    /// initial configuration from the workload family).
    ///
    /// # Errors
    ///
    /// Propagates workload-constraint violations (e.g. class `B` with odd
    /// `n`) — still a client error, still HTTP 400.
    pub fn to_scenario(&self) -> Result<Scenario, String> {
        let initial = workloads::by_name(&self.workload, self.class, self.n, self.seed)?;
        Ok(Scenario {
            initial,
            algorithm: self.algorithm,
            scheduler: self.scheduler,
            motion: self.motion,
            faults: self.faults,
            delta: self.delta,
            max_rounds: self.max_rounds,
            seed: self.seed,
            // ASYNC runs skip the ATOM-model invariant monitors: Lemma 5.1
            // and the never-bivalent property are round-model theorems and
            // mid-flight configurations violate them legitimately.
            audit: self.scheduler != "async",
            rigid: self.rigid,
            speed_skew: self.speed_skew,
        })
    }

    /// Canonical byte encoding of the spec's *typed* fields, the input to
    /// the result-cache key ([`crate::cache::spec_key`]).
    ///
    /// Canonicalisation happens in [`ScenarioSpec::from_json`], not here:
    /// parsing collapses JSON-level degrees of freedom (member order,
    /// whitespace, number spellings like `1e1` vs `10`, defaulted vs
    /// explicit fields) into one typed value, so two bodies describing the
    /// same scenario encode to the same bytes. Every field that influences
    /// the run is included — strings NUL-terminated (self-delimiting
    /// against concatenation collisions), integers little-endian, `delta`
    /// by its exact bit pattern (the engine is a pure function of bits,
    /// not of approximate values).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(self.workload.as_bytes());
        out.push(0);
        match self.class {
            Some(c) => out.extend_from_slice(c.short_name().as_bytes()),
            None => out.push(b'-'),
        }
        out.push(0);
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.faults as u64).to_le_bytes());
        out.extend_from_slice(self.algorithm.as_bytes());
        out.push(0);
        out.extend_from_slice(self.scheduler.as_bytes());
        out.push(0);
        out.extend_from_slice(self.motion.as_bytes());
        out.push(0);
        out.extend_from_slice(&self.delta.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max_rounds.to_le_bytes());
        out.push(self.rigid as u8);
        out.extend_from_slice(&self.speed_skew.to_bits().to_le_bytes());
        out
    }

    /// The trace/v2 document header line for this spec's traced run
    /// (newline included, so the v1 round lines concatenate directly):
    /// the pinned schema tag, the canonical spec JSON, the seed and the
    /// producing engine. Both `/v1/trace` wire forms (JSON `POST` and the
    /// deprecated query-param `GET`) emit exactly this header, which is
    /// what lets a captured corpus name the execution it came from.
    pub fn trace_header(&self) -> String {
        let engine = if self.scheduler == "async" {
            "async"
        } else {
            "sync"
        };
        let mut header = gather_sim::trace::v2_header(&self.to_json(), self.seed, engine);
        header.push('\n');
        header
    }

    /// The spec as its canonical JSON object (inverse of
    /// [`ScenarioSpec::from_json`]; used by the load generator to build
    /// request bodies).
    pub fn to_json(&self) -> String {
        let class = match self.class {
            Some(c) => format!("\"class\":\"{}\",", c.short_name()),
            None => String::new(),
        };
        // The ASYNC-only knobs are emitted only for async specs: round-based
        // specs carrying them would fail `from_json`'s combo validation.
        let async_knobs = if self.scheduler == "async" {
            format!(
                ",\"rigidity\":\"{}\",\"speed_skew\":{:?}",
                if self.rigid { "rigid" } else { "non-rigid" },
                self.speed_skew
            )
        } else {
            String::new()
        };
        format!(
            "{{\"workload\":\"{}\",{class}\"n\":{},\"seed\":{},\"faults\":{},\
             \"algorithm\":\"{}\",\"scheduler\":\"{}\",\"motion\":\"{}\",\
             \"delta\":{:?},\"max_rounds\":{}{async_knobs}}}",
            self.workload,
            self.n,
            self.seed,
            self.faults,
            self.algorithm,
            self.scheduler,
            self.motion,
            self.delta,
            self.max_rounds
        )
    }
}

/// A validated `POST /run` body: one or many scenario specs plus an
/// optional queue-wait deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// The scenarios to execute, in order.
    pub scenarios: Vec<ScenarioSpec>,
    /// Milliseconds this request may wait in the admission queue before
    /// the dispatcher discards it (server default when absent).
    pub deadline_ms: Option<u64>,
}

impl RunRequest {
    /// Parses a request body: either a single bare spec object or
    /// `{"scenarios": [spec, ...], "deadline_ms": N}`.
    ///
    /// # Errors
    ///
    /// Describes the first syntactic or semantic violation (HTTP 400).
    pub fn parse(body: &str, max_batch: usize) -> Result<RunRequest, String> {
        let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let (specs_json, deadline_ms): (Vec<&Json>, Option<u64>) = if v.get("scenarios").is_some() {
            let arr = v
                .get("scenarios")
                .and_then(Json::as_array)
                .ok_or("\"scenarios\" must be an array")?;
            if let Json::Obj(members) = &v {
                for (key, _) in members {
                    if key != "scenarios" && key != "deadline_ms" {
                        return Err(format!("unknown request field {key:?}"));
                    }
                }
            }
            let deadline = field_u64(&v, "deadline_ms", MAX_DEADLINE_MS)?;
            (arr.iter().collect(), deadline)
        } else {
            (vec![&v], None)
        };
        if specs_json.is_empty() {
            return Err("\"scenarios\" must not be empty".to_string());
        }
        if specs_json.len() > max_batch {
            return Err(format!(
                "batch of {} scenarios exceeds the per-request limit of {max_batch}",
                specs_json.len()
            ));
        }
        let scenarios = specs_json
            .into_iter()
            .enumerate()
            .map(|(i, s)| ScenarioSpec::from_json(s).map_err(|e| format!("scenario[{i}]: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunRequest {
            scenarios,
            deadline_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_the_harness() {
        let spec = ScenarioSpec::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(spec, ScenarioSpec::default());
        let scenario = spec.to_scenario().unwrap();
        assert_eq!(scenario.algorithm, "wait-free-gather");
        assert_eq!(scenario.delta, 0.05);
        assert_eq!(scenario.max_rounds, 60_000);
        assert_eq!(scenario.initial.len(), 8);
    }

    #[test]
    fn full_spec_parses_and_maps() {
        let body = r#"{"workload":"class","class":"QR","n":12,"seed":9,"faults":2,
                       "algorithm":"center-of-gravity","scheduler":"round-robin",
                       "motion":"delta","delta":0.1,"max_rounds":500}"#;
        let spec = ScenarioSpec::from_json(&Json::parse(body).unwrap()).unwrap();
        assert_eq!(spec.class, Some(Class::QuasiRegular));
        assert_eq!(spec.n, 12);
        assert_eq!(spec.faults, 2);
        let scenario = spec.to_scenario().unwrap();
        assert_eq!(scenario.initial.len(), 12);
        assert_eq!(scenario.scheduler, "round-robin");
        // The scenario is reproducible: same spec, same configuration.
        assert_eq!(scenario.initial, spec.to_scenario().unwrap().initial);
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = ScenarioSpec {
            n: 16,
            seed: 42,
            delta: 0.125,
            ..ScenarioSpec::default()
        };
        let parsed = ScenarioSpec::from_json(&Json::parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        let scatter = ScenarioSpec {
            workload: "scatter".to_string(),
            class: None,
            n: 6,
            ..ScenarioSpec::default()
        };
        let parsed = ScenarioSpec::from_json(&Json::parse(&scatter.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, scatter);
    }

    #[test]
    fn async_specs_parse_and_round_trip() {
        let body = r#"{"workload":"lattice","n":9,"seed":7,"faults":2,
                       "algorithm":"grid-march","scheduler":"async",
                       "rigidity":"non-rigid","speed_skew":0.5,"max_rounds":900}"#;
        let spec = ScenarioSpec::from_json(&Json::parse(body).unwrap()).unwrap();
        assert_eq!(spec.scheduler, "async");
        assert!(!spec.rigid);
        assert_eq!(spec.speed_skew, 0.5);
        let scenario = spec.to_scenario().unwrap();
        assert!(scenario.is_async());
        assert!(!scenario.audit, "async runs must not audit ATOM invariants");
        assert!(!scenario.rigid);
        assert_eq!(scenario.speed_skew, 0.5);
        // to_json is from_json's inverse for async specs too.
        let parsed = ScenarioSpec::from_json(&Json::parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        // The async knobs feed the cache key: rigid vs non-rigid and skew
        // must produce distinct canonical bytes.
        let rigid = ScenarioSpec {
            rigid: true,
            ..spec.clone()
        };
        assert_ne!(spec.canonical_bytes(), rigid.canonical_bytes());
        let skewed = ScenarioSpec {
            speed_skew: 1.0,
            ..spec.clone()
        };
        assert_ne!(spec.canonical_bytes(), skewed.canonical_bytes());
        // Round-based specs never emit the async-only fields.
        assert!(!ScenarioSpec::default().to_json().contains("rigidity"));
    }

    #[test]
    fn async_query_specs_work_too() {
        let spec =
            ScenarioSpec::from_query("scheduler=async&rigidity=non-rigid&speed_skew=2").unwrap();
        assert_eq!(spec.scheduler, "async");
        assert!(!spec.rigid);
        assert_eq!(spec.speed_skew, 2.0);
    }

    #[test]
    fn async_knobs_without_async_scheduler_are_rejected() {
        for (body, needle) in [
            (
                r#"{"rigidity":"non-rigid"}"#,
                "requires \"scheduler\":\"async\"",
            ),
            (r#"{"speed_skew":1}"#, "requires \"scheduler\":\"async\""),
            (
                r#"{"scheduler":"full","rigidity":"rigid"}"#,
                "requires \"scheduler\":\"async\"",
            ),
            (
                r#"{"scheduler":"async","rigidity":"bendy"}"#,
                "unknown rigidity",
            ),
            (
                r#"{"scheduler":"async","speed_skew":11}"#,
                "must be in [0, 10]",
            ),
            (
                r#"{"scheduler":"async","speed_skew":-0.5}"#,
                "must be in [0, 10]",
            ),
        ] {
            let err = ScenarioSpec::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(
                err.contains(needle),
                "{body}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_specs() {
        for (body, needle) in [
            (r#"{"classs":"QR"}"#, "unknown spec field"),
            (r#"{"n":3}"#, "must be in 4"),
            (r#"{"n":100000}"#, "must be <="),
            (r#"{"n":8,"faults":8}"#, "faults"),
            (r#"{"class":"Z"}"#, "unknown class"),
            (r#"{"workload":"warp"}"#, "unknown workload"),
            (r#"{"algorithm":"magic"}"#, "unknown algorithm"),
            (r#"{"scheduler":"magic"}"#, "unknown scheduler"),
            (r#"{"motion":"magic"}"#, "unknown motion"),
            (r#"{"delta":0}"#, "delta"),
            (r#"{"delta":-1}"#, "delta"),
            (r#"{"max_rounds":0}"#, ">= 1"),
            (r#"{"max_rounds":1e12}"#, "must be <="),
            (r#"{"n":"eight"}"#, "integer"),
            (r#"[1,2]"#, "object"),
        ] {
            let err = Json::parse(body)
                .map_err(|e| e.to_string())
                .and_then(|v| ScenarioSpec::from_json(&v).map(|_| ()));
            match err {
                Err(e) => assert!(
                    e.contains(needle),
                    "{body}: error {e:?} should mention {needle:?}"
                ),
                Ok(()) => panic!("{body} should be rejected"),
            }
        }
    }

    #[test]
    fn query_specs_share_the_json_validator() {
        let spec =
            ScenarioSpec::from_query("workload=class&class=QR&n=12&seed=9&delta=0.1").unwrap();
        assert_eq!(spec.class, Some(Class::QuasiRegular));
        assert_eq!(spec.n, 12);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.delta, 0.1);
        assert_eq!(
            ScenarioSpec::from_query("").unwrap(),
            ScenarioSpec::default()
        );
        for (query, needle) in [
            ("n", "key=value"),
            ("n=three", "invalid query value"),
            ("classs=QR", "unknown spec field"),
            ("n=3", "must be in 4"),
            ("class=Z", "unknown class"),
        ] {
            let err = ScenarioSpec::from_query(query).unwrap_err();
            assert!(
                err.contains(needle),
                "{query}: {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn run_request_accepts_bare_and_batched_bodies() {
        let bare = RunRequest::parse(r#"{"n":8,"seed":1}"#, 4).unwrap();
        assert_eq!(bare.scenarios.len(), 1);
        assert_eq!(bare.deadline_ms, None);
        let batch = RunRequest::parse(
            r#"{"scenarios":[{"n":8},{"n":9,"seed":2}],"deadline_ms":1000}"#,
            4,
        )
        .unwrap();
        assert_eq!(batch.scenarios.len(), 2);
        assert_eq!(batch.scenarios[1].n, 9);
        assert_eq!(batch.deadline_ms, Some(1000));
    }

    #[test]
    fn run_request_rejects_bad_batches() {
        assert!(RunRequest::parse("not json", 4)
            .unwrap_err()
            .contains("JSON"));
        assert!(RunRequest::parse(r#"{"scenarios":[]}"#, 4)
            .unwrap_err()
            .contains("empty"));
        assert!(RunRequest::parse(r#"{"scenarios":[{},{},{}]}"#, 2)
            .unwrap_err()
            .contains("limit"));
        assert!(RunRequest::parse(r#"{"scenarios":[{"n":1}]}"#, 4)
            .unwrap_err()
            .contains("scenario[0]"));
        assert!(RunRequest::parse(r#"{"scenarios":[{}],"extra":1}"#, 4)
            .unwrap_err()
            .contains("unknown request field"));
        assert!(RunRequest::parse(r#"{"scenarios":{}}"#, 4)
            .unwrap_err()
            .contains("array"));
    }

    #[test]
    fn trace_header_names_spec_seed_and_engine() {
        let spec = ScenarioSpec {
            seed: 42,
            ..ScenarioSpec::default()
        };
        let header = spec.trace_header();
        assert!(header.starts_with("{\"schema\":\"trace/v2\",\"spec\":"));
        assert!(header.contains(&format!("\"spec\":{}", spec.to_json())));
        assert!(header.ends_with(",\"seed\":42,\"engine\":\"sync\"}\n"));
        let async_spec = ScenarioSpec {
            scheduler: "async",
            ..ScenarioSpec::default()
        };
        assert!(async_spec
            .trace_header()
            .ends_with("\"engine\":\"async\"}\n"));
    }

    #[test]
    fn class_b_odd_n_is_a_client_error_not_a_panic() {
        let spec = ScenarioSpec {
            class: Some(Class::Bivalent),
            n: 7,
            ..ScenarioSpec::default()
        };
        assert!(spec.to_scenario().unwrap_err().contains("even"));
    }
}
