//! Minimal JSON value model and recursive-descent parser (pure std).
//!
//! The hermetic-build policy (DESIGN.md §8) rules out serde, and the
//! service only needs to read small request bodies, so this is a
//! deliberately small parser: full escape handling (including surrogate
//! pairs), a nesting-depth limit against hostile inputs, objects kept as
//! ordered key/value vectors. Response bodies are *written* by the
//! deterministic serialisers in `gather-sim` (`RunMetrics::to_jsonl`) and
//! never pass through this module, so the parse side can stay lossy about
//! float formatting without threatening the bit-identity contract.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order. Lookups take the first match.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, anything
    /// else after the value is an error).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax violation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.i != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.i));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for other variants or a missing
    /// key; first match wins on duplicates).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an
    /// exact `u64` representation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// Nesting levels a document may use before the parser rejects it —
/// recursion depth is attacker-controlled input, so it is bounded.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.i))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i]).expect("ascii");
        let x: f64 = text
            .parse()
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(Json::Num(x))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => {
                            return Err(format!("invalid escape \\{}", other as char));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.i..]).expect("valid utf-8");
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.i + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.i..end])
            .map_err(|_| "non-ascii \\u escape".to_string())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))?;
        self.i = end;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (used by the error
/// bodies the server writes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".to_string()));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "c"}], "n": 7}"#).unwrap();
        assert!(v.is_object());
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("c"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn first_duplicate_key_wins() {
        let v = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn unescapes_strings() {
        let v = Json::parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
        // Surrogate pair: U+1F600.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
            "nan",
            "1e999",       // non-finite
            "\"\\ud800\"", // lone surrogate
            "\"\\q\"",     // bad escape
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nquote\" backslash\\ tab\t control\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(2f64.powi(60)).as_u64(), None);
    }
}
