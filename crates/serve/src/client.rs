//! Minimal blocking HTTP/1.1 client for the scenario service.
//!
//! Shared by the `b8_service` load generator, the check.sh smoke gate and
//! the integration tests so they all exercise the server over a real TCP
//! socket instead of poking internals. Keep-alive is used by default: one
//! [`Client`] holds one connection and can issue many requests.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the service.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:8080`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // Generous budget: a queued scenario batch can legitimately take
        // seconds; hangs beyond this indicate a wedged server.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client { reader, writer })
    }

    /// Sends one request and reads the response.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or responses this minimal client cannot
    /// frame (no `Content-Length`).
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: gather-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Convenience: `GET` with an empty body.
    ///
    /// # Errors
    ///
    /// Same as [`request`](Client::request).
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, b"")
    }

    /// Convenience: `POST /v1/run` with a JSON body.
    ///
    /// # Errors
    ///
    /// Same as [`request`](Client::request).
    pub fn post_run(&mut self, json_body: &str) -> io::Result<ClientResponse> {
        self.request("POST", "/v1/run", json_body.as_bytes())
    }

    /// Convenience: `POST /v1/batch` (the amortised mega-batch endpoint)
    /// with a JSON body.
    ///
    /// # Errors
    ///
    /// Same as [`request`](Client::request).
    pub fn post_batch(&mut self, json_body: &str) -> io::Result<ClientResponse> {
        self.request("POST", "/v1/batch", json_body.as_bytes())
    }

    /// Convenience: `POST /v1/trace` with a JSON `ScenarioSpec` body (the
    /// same body shape as `/v1/run`). The chunked trace/v2 document —
    /// header line plus NDJSON round lines — arrives fully decoded in
    /// [`ClientResponse::body`], byte-identical to the deprecated
    /// [`get_trace`](Client::get_trace) form of the same spec.
    ///
    /// # Errors
    ///
    /// Same as [`request`](Client::request).
    pub fn post_trace(&mut self, json_body: &str) -> io::Result<ClientResponse> {
        self.request("POST", "/v1/trace", json_body.as_bytes())
    }

    /// Convenience: `GET /v1/trace` with query-string spec parameters
    /// (e.g. `n=8&seed=1`) — the *deprecated* trace encoding (responses
    /// carry a `Deprecation` header; prefer
    /// [`post_trace`](Client::post_trace)). The chunked response arrives
    /// fully decoded in [`ClientResponse::body`].
    ///
    /// # Errors
    ///
    /// Same as [`request`](Client::request).
    pub fn get_trace(&mut self, query: &str) -> io::Result<ClientResponse> {
        if query.is_empty() {
            self.request("GET", "/v1/trace", b"")
        } else {
            self.request("GET", &format!("/v1/trace?{query}"), b"")
        }
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let response = ClientResponse {
            status,
            headers,
            body: Vec::new(),
        };
        if response
            .header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
        {
            let body = self.read_chunked_body()?;
            return Ok(ClientResponse { body, ..response });
        }
        let len: usize = response
            .header("content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response without content-length",
                )
            })?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse { body, ..response })
    }

    /// Decodes a chunked body: hex size line, that many bytes, CRLF,
    /// repeated until the `0` chunk and its trailing blank line.
    fn read_chunked_body(&mut self) -> io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let size_line = self.read_line()?;
            let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad chunk size line {size_line:?}"),
                )
            })?;
            if size == 0 {
                // Trailer section: blank line terminates the response.
                loop {
                    if self.read_line()?.is_empty() {
                        return Ok(body);
                    }
                }
            }
            let at = body.len();
            body.resize(at + size, 0);
            self.reader.read_exact(&mut body[at..])?;
            let crlf = self.read_line()?;
            if !crlf.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "chunk data not followed by CRLF",
                ));
            }
        }
    }
}
