//! Deterministic result cache: canonical spec keys and a sharded LRU of
//! byte-exact response payloads.
//!
//! ## Why caching is safe here
//!
//! The paper's WAIT-FREE-GATHER executions are fully determined by the
//! adversary schedule, and the engine fixes that schedule with the spec's
//! seed: a served run is a *pure function* of its validated
//! [`ScenarioSpec`] (DESIGN.md §11's bit-identity contract is exactly
//! this statement, enforced end-to-end by `tests/service_roundtrip.rs`).
//! A cache over pure functions cannot serve a wrong answer — only the
//! same bytes the engine would have produced. So the cache stores the
//! *rendered* payloads (`RunMetrics::to_jsonl` lines, full NDJSON trace
//! bodies) and hands them back byte-identical, behind an [`Arc`] so a hit
//! is served without copying.
//!
//! ## Keys
//!
//! [`spec_key`] = FNV-1a (64-bit) over a domain tag plus
//! [`ScenarioSpec::canonical_bytes`]. Canonicalisation lives in the
//! parser, so JSON key order and whitespace never reach the hash; the tag
//! separates run-line keys from trace-body keys for the same spec. FNV is
//! not collision-resistant against adversaries, but a collision here
//! costs a wrong *cached* payload only if two admissible specs collide in
//! 64 bits — with the cache bounded at thousands of entries the birthday
//! bound keeps the accidental-collision probability around 1e-12, and a
//! client who attacks their own cache key space only poisons answers to
//! the colliding spec.
//!
//! ## Structure
//!
//! Lock-striped: [`SHARDS`] independent `Mutex<HashMap>` shards selected
//! by key bits, so concurrent event-loop shards and dispatcher lanes
//! rarely contend on the same stripe. Each shard runs its own LRU by
//! monotonic touch tick; eviction scans the shard for the stalest entry —
//! O(entries/shard), which is noise next to the millisecond-scale
//! simulation that precedes every insert.

use crate::spec::ScenarioSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Lock stripes (power of two; key bits select the stripe).
const SHARDS: usize = 16;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Which payload family a key addresses (same spec, different bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// One `RunMetrics::to_jsonl` line (the `/v1/run` unit).
    Run,
    /// One full NDJSON trace body (the `/v1/trace` unit).
    Trace,
}

/// The cache key for `spec`'s payload of kind `kind`: FNV-1a over a
/// domain tag and the spec's canonical bytes. Invariant under JSON
/// member order / whitespace / number spelling (the parser canonicalises
/// before bytes are produced); distinct across any field that changes
/// the run (seed, faults, δ bits, ...).
pub fn spec_key(spec: &ScenarioSpec, kind: KeyKind) -> u64 {
    let mut hash = FNV_OFFSET;
    let tag: u8 = match kind {
        KeyKind::Run => b'r',
        KeyKind::Trace => b't',
    };
    for &byte in std::iter::once(&tag).chain(spec.canonical_bytes().iter()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

struct Entry {
    payload: Arc<Vec<u8>>,
    stored: Instant,
    touched: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

/// A successful lookup: the stored bytes plus their age.
pub struct Hit {
    /// The byte-exact payload (shared, not copied).
    pub payload: Arc<Vec<u8>>,
    /// Whole seconds since the payload was stored (the `Age` header).
    pub age_secs: u64,
}

/// Counter snapshot for the `/v1/metrics` exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a stored payload.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Configured capacity (0 = disabled).
    pub capacity: u64,
}

impl CacheCounters {
    /// Hit fraction of all lookups so far (0 before the first lookup).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded, lock-striped LRU of rendered response payloads.
///
/// Capacity 0 disables the cache: every lookup misses without counting,
/// every insert is dropped — the `GATHER_CACHE_ENTRIES=0` escape hatch
/// for workloads that are never repeated (or for A/B-ing the cache away).
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` payloads (0 disables).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::default()).collect(),
            per_shard: capacity.div_ceil(SHARDS),
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Is the cache disabled (capacity 0)?
    pub fn disabled(&self) -> bool {
        self.capacity == 0
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The low bits feed the in-shard HashMap; take high bits here so
        // the two selectors stay independent.
        &self.shards[(key >> 59) as usize % SHARDS]
    }

    /// Looks `key` up, counting a hit or miss (disabled caches miss
    /// silently — a permanent 0% would drown the ratio gauge in noise).
    pub fn lookup(&self, key: u64) -> Option<Hit> {
        if self.disabled() {
            return None;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.touched = tick;
                let hit = Hit {
                    payload: Arc::clone(&entry.payload),
                    age_secs: entry.stored.elapsed().as_secs(),
                };
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `payload` under `key`, evicting the shard's
    /// least-recently-touched entry when the stripe is full. Re-inserting
    /// an existing key refreshes the entry (same bytes by the determinism
    /// argument, so this is only a timestamp refresh).
    pub fn insert(&self, key: u64, payload: Arc<Vec<u8>>) {
        if self.disabled() {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard {
            if let Some(&stalest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k)
            {
                shard.map.remove(&stalest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                payload,
                stored: Instant::now(),
                touched: tick,
            },
        );
    }

    /// Counter snapshot for the metrics exposition.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len() as u64)
                .sum(),
            capacity: self.capacity as u64,
        }
    }
}

/// Default cache capacity: `GATHER_CACHE_ENTRIES` when set (0 disables),
/// else 4096 entries — at the service's 1 MiB body cap a pathological
/// all-trace working set stays bounded, and typical run lines are ~300
/// bytes.
///
/// # Panics
///
/// On an unparsable `GATHER_CACHE_ENTRIES` (same fail-fast contract as
/// `GATHER_THREADS`: a typoed operator override must not silently fall
/// back to the default).
pub fn default_entries() -> usize {
    match std::env::var("GATHER_CACHE_ENTRIES") {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            panic!("GATHER_CACHE_ENTRIES must be a non-negative integer, got {v:?}")
        }),
        Err(_) => 4096,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn key_of(body: &str) -> u64 {
        let spec = ScenarioSpec::from_json(&Json::parse(body).unwrap()).unwrap();
        spec_key(&spec, KeyKind::Run)
    }

    #[test]
    fn key_is_invariant_under_json_reordering_and_whitespace() {
        // Property over a deterministic grid: render each spec's fields in
        // several member orders and whitespace styles, plus equivalent
        // number spellings — all must hash identically.
        let mut checked = 0;
        for seed in [0u64, 7, 123_456_789] {
            for (n, faults) in [(8, 0), (12, 3), (16, 5)] {
                for delta in ["0.05", "5e-2", "0.050"] {
                    let fields = [
                        String::from("\"workload\":\"class\""),
                        String::from("\"class\":\"QR\""),
                        format!("\"n\":{n}"),
                        format!("\"seed\":{seed}"),
                        format!("\"faults\":{faults}"),
                        format!("\"delta\":{delta}"),
                        String::from("\"max_rounds\":1000"),
                    ];
                    let canonical = key_of(&format!("{{{}}}", fields.join(",")));
                    // Reversed member order.
                    let mut rev = fields.to_vec();
                    rev.reverse();
                    assert_eq!(canonical, key_of(&format!("{{{}}}", rev.join(","))));
                    // Rotated order with scattered whitespace.
                    let rotated: Vec<_> = fields[3..].iter().chain(&fields[..3]).cloned().collect();
                    assert_eq!(
                        canonical,
                        key_of(&format!("{{\n  {}\n}}", rotated.join(" ,\n\t ")))
                    );
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 27, "grid actually exercised");
    }

    #[test]
    fn key_ignores_defaulted_vs_explicit_fields() {
        // Omitting a field and spelling out its default are the same spec.
        let d = ScenarioSpec::default();
        assert_eq!(
            key_of("{}"),
            key_of(&format!(
                "{{\"workload\":\"class\",\"class\":\"A\",\"n\":{},\"seed\":{},\"delta\":{:?}}}",
                d.n, d.seed, d.delta
            ))
        );
    }

    #[test]
    fn key_is_distinct_across_run_relevant_fields() {
        let base = key_of("{}");
        for (variant, body) in [
            ("seed", r#"{"seed":1}"#),
            ("faults", r#"{"faults":1}"#),
            ("delta", r#"{"delta":0.0500000001}"#),
            ("n", r#"{"n":9}"#),
            ("max_rounds", r#"{"max_rounds":59999}"#),
            ("class", r#"{"class":"QR"}"#),
            ("scheduler", r#"{"scheduler":"round-robin"}"#),
            ("motion", r#"{"motion":"delta"}"#),
            ("workload", r#"{"workload":"scatter"}"#),
        ] {
            assert_ne!(base, key_of(body), "{variant} must change the key");
        }
        // Pairwise distinctness across a seed × faults × delta grid.
        let mut keys = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for faults in 0..4usize {
                for delta in ["0.01", "0.02", "0.05"] {
                    assert!(
                        keys.insert(key_of(&format!(
                            "{{\"seed\":{seed},\"faults\":{faults},\"delta\":{delta}}}"
                        ))),
                        "collision at seed={seed} faults={faults} delta={delta}"
                    );
                }
            }
        }
        assert_eq!(keys.len(), 8 * 4 * 3);
    }

    #[test]
    fn run_and_trace_keys_differ_for_the_same_spec() {
        let spec = ScenarioSpec::default();
        assert_ne!(
            spec_key(&spec, KeyKind::Run),
            spec_key(&spec, KeyKind::Trace)
        );
    }

    #[test]
    fn lookup_insert_and_counters() {
        let cache = ResultCache::new(64);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, Arc::new(b"payload".to_vec()));
        let hit = cache.lookup(1).expect("stored entry hits");
        assert_eq!(hit.payload.as_slice(), b"payload");
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions, c.entries), (1, 1, 0, 1));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.capacity, 64);
    }

    #[test]
    fn lru_evicts_the_stalest_entry_per_shard() {
        // Force every key into one stripe by fixing the high bits the
        // shard selector reads; per-shard budget = ceil(32/16) = 2.
        let cache = ResultCache::new(32);
        let key = |i: u64| i; // high bits zero -> all in shard 0
        cache.insert(key(1), Arc::new(vec![1]));
        cache.insert(key(2), Arc::new(vec![2]));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(key(1)).is_some());
        cache.insert(key(3), Arc::new(vec![3]));
        assert!(cache.lookup(key(2)).is_none(), "LRU entry evicted");
        assert!(cache.lookup(key(1)).is_some(), "recently touched survives");
        assert!(cache.lookup(key(3)).is_some(), "new entry present");
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = ResultCache::new(32);
        cache.insert(5, Arc::new(vec![5]));
        cache.insert(5, Arc::new(vec![5]));
        let c = cache.counters();
        assert_eq!((c.entries, c.evictions), (1, 0));
    }

    #[test]
    fn capacity_zero_disables_everything() {
        let cache = ResultCache::new(0);
        assert!(cache.disabled());
        cache.insert(1, Arc::new(vec![1]));
        assert!(cache.lookup(1).is_none());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries), (0, 0, 0));
        assert_eq!(c.hit_ratio(), 0.0);
    }

    #[test]
    fn age_reflects_storage_time() {
        let cache = ResultCache::new(8);
        cache.insert(9, Arc::new(vec![9]));
        let hit = cache.lookup(9).unwrap();
        assert_eq!(hit.age_secs, 0, "age in whole seconds starts at 0");
    }
}
