//! Readiness-driven serving engine: sharded epoll event loops
//! (Linux only; the threaded engine in [`crate::server`] covers every
//! other platform).
//!
//! Each shard is one thread owning one `epoll` instance and a slab of
//! connection state machines. The acceptor hands sockets round-robin to
//! the shards; from then on a connection's entire lifecycle — incremental
//! request parsing ([`crate::http::try_parse`]), routing, reply delivery,
//! vectored writes, timeouts — happens on its shard thread, so no
//! per-connection locks exist. Cross-thread input (new sockets from the
//! acceptor, replies from dispatcher lanes) arrives through a mutexed
//! inbox drained at the top of every loop iteration, with an `eventfd`
//! waking the shard out of `epoll_wait`.
//!
//! Interest is level-triggered, managed per state:
//!
//! * **reading** (`EPOLLIN | EPOLLRDHUP`) — bytes accumulate in `rbuf`
//!   until `try_parse` yields a request;
//! * **busy** (`EPOLLRDHUP` only) — a request was admitted to the
//!   dispatcher queue; `EPOLLIN` is dropped so the level-triggered loop
//!   does not spin on pipelined bytes we will not parse until the reply
//!   lands (kernel-buffer backpressure does the flow control);
//! * **flushing** (`… | EPOLLOUT`) — a vectored write hit `WouldBlock`;
//!   `EPOLLOUT` stays armed until the output queue drains.
//!
//! Responses are queued as byte segments — [`Response::head_bytes`]
//! first, then the body either copied (owned) or zero-copy as
//! `Arc`-shared cache slices — and written with `write_vectored`. The
//! segment layout mirrors [`Response::write_to`] exactly (same head
//! bytes, same 16 KiB chunked framing), which is what keeps the two
//! engines byte-identical on the wire (DESIGN.md §16).
//!
//! The only FFI this module needs is four raw syscall bindings
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`); the fds
//! themselves live in [`OwnedFd`]/[`File`] wrappers so std handles
//! lifetime and close.

use crate::http::{self, Body, Response, CHUNK_SIZE};
use crate::server::{
    http_error_response, reply_to_response, route, Inner, Pending, Replier, Reply, Routed,
    IDLE_POLL,
};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Raw syscall surface. `std` exposes no epoll API and the `libc` crate
/// is not a dependency, so the four functions are declared directly; the
/// constants are kernel ABI (stable since Linux 2.6).
mod sys {
    /// Mirrors `struct epoll_event`. The kernel packs it on x86-64
    /// (12 bytes); other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub token: u64,
    }

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EFD_CLOEXEC: i32 = 0x80000;
    pub const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
    }
}

/// Token reserved for the shard's wake `eventfd` (connection slots use
/// their slab index, which can never reach this).
const WAKE_TOKEN: u64 = u64::MAX;
/// Upper bound on events consumed per `epoll_wait`.
const EVENT_BATCH: usize = 64;
/// Stack read buffer; one syscall's worth of request bytes.
const READ_BUF: usize = 16 * 1024;
/// At most this many segments per vectored write.
const WRITE_VECTORS: usize = 8;

/// An `epoll` instance behind an [`OwnedFd`] (closed on drop).
struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = sys::EpollEvent { events, token };
        let rc = unsafe { sys::epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) {
        // The event argument is ignored for DEL on any kernel we can run
        // on; errors (fd already gone) are moot.
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits up to `timeout_ms`; `EINTR` is reported as zero events.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> usize {
        let rc = unsafe {
            sys::epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if rc < 0 {
            return 0;
        }
        rc as usize
    }
}

/// A nonblocking `eventfd` wrapped in [`File`] for std I/O and close.
struct EventFd(File);

impl EventFd {
    fn new() -> io::Result<EventFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd(File::from(unsafe { OwnedFd::from_raw_fd(fd) })))
    }

    /// Wakes the shard. A `WouldBlock` (counter saturated) still wakes
    /// it, so errors are ignored.
    fn signal(&self) {
        let _ = (&self.0).write(&1u64.to_ne_bytes());
    }

    /// Resets the counter so level-triggered `EPOLLIN` stops firing.
    fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.0).read(&mut buf);
    }
}

/// Cross-thread input for one shard: sockets from the acceptor, replies
/// from the dispatcher lanes.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    replies: Vec<(usize, u64, Reply)>,
}

/// A shard's public face: push work into the inbox, kick the `eventfd`.
pub(crate) struct ShardHandle {
    wake: EventFd,
    inbox: Mutex<Inbox>,
}

impl ShardHandle {
    pub(crate) fn push_conn(&self, stream: TcpStream) {
        self.lock().conns.push(stream);
        self.wake.signal();
    }

    /// Delivers a dispatcher reply to connection `slot`. The generation
    /// guards against the slot having been reused for a new connection
    /// after the original closed mid-flight.
    pub(crate) fn push_reply(&self, slot: usize, generation: u64, reply: Reply) {
        self.lock().replies.push((slot, generation, reply));
        self.wake.signal();
    }

    /// Wakes the shard with no payload (shutdown nudge).
    pub(crate) fn wake_now(&self) {
        self.wake.signal();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inbox> {
        self.inbox.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One queued output segment. `Shared` segments serve cache payloads
/// zero-copy straight out of the result cache's `Arc`s.
enum OutBuf {
    Own(Vec<u8>),
    Shared(Arc<Vec<u8>>, usize, usize),
}

impl OutBuf {
    fn bytes(&self) -> &[u8] {
        match self {
            OutBuf::Own(v) => v,
            OutBuf::Shared(arc, start, end) => &arc[*start..*end],
        }
    }
}

/// An admitted request awaiting its dispatcher reply.
struct Busy {
    pending: Pending,
    keep_alive: bool,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Slot-reuse guard, checked against reply deliveries.
    generation: u64,
    /// Unparsed request bytes.
    rbuf: Vec<u8>,
    /// Pending output segments; `out_pos` is the write offset into the
    /// front segment.
    out: VecDeque<OutBuf>,
    out_pos: usize,
    busy: Option<Busy>,
    close_after_flush: bool,
    /// Peer half-closed its write side (EOF on read / `EPOLLRDHUP`).
    peer_eof: bool,
    last_activity: Instant,
    /// When the first byte of a not-yet-complete request arrived; drives
    /// the 408 read deadline.
    head_started: Option<Instant>,
    /// Currently registered epoll interest.
    interest: u32,
}

/// Spawns `count` shard threads; any syscall failure tears down what was
/// built and reports the error so the server can fall back to the
/// threaded engine.
pub(crate) fn spawn_shards(
    inner: &Arc<Inner>,
    count: usize,
    active: &Arc<AtomicUsize>,
) -> io::Result<Vec<(Arc<ShardHandle>, JoinHandle<()>)>> {
    let count = count.max(1);
    let mut shards = Vec::with_capacity(count);
    for i in 0..count {
        let epoll = Epoll::new()?;
        let wake = EventFd::new()?;
        epoll.add(wake.0.as_raw_fd(), sys::EPOLLIN, WAKE_TOKEN)?;
        let handle = Arc::new(ShardHandle {
            wake,
            inbox: Mutex::new(Inbox::default()),
        });
        let shard = Shard {
            inner: Arc::clone(inner),
            handle: Arc::clone(&handle),
            epoll,
            active: Arc::clone(active),
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
        };
        let join = std::thread::Builder::new()
            .name(format!("gather-serve-loop-{i}"))
            .spawn(move || shard.run())?;
        shards.push((handle, join));
    }
    Ok(shards)
}

struct Shard {
    inner: Arc<Inner>,
    handle: Arc<ShardHandle>,
    epoll: Epoll,
    active: Arc<AtomicUsize>,
    /// Connection slab; freed indices are recycled via `free`.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
}

impl Shard {
    fn run(mut self) {
        let mut events = vec![
            sys::EpollEvent {
                events: 0,
                token: 0,
            };
            EVENT_BATCH
        ];
        let mut last_scan = Instant::now();
        loop {
            let n = self.epoll.wait(&mut events, IDLE_POLL.as_millis() as i32);
            let (new_conns, replies) = {
                let mut inbox = self.handle.lock();
                (
                    std::mem::take(&mut inbox.conns),
                    std::mem::take(&mut inbox.replies),
                )
            };
            for stream in new_conns {
                self.register(stream);
            }
            for (slot, generation, reply) in replies {
                self.deliver(slot, generation, reply);
            }
            for &event in &events[..n] {
                // Copy fields out of the (packed) event before use.
                let token = event.token;
                let flags = event.events;
                if token == WAKE_TOKEN {
                    self.handle.wake.drain();
                    continue;
                }
                let slot = token as usize;
                if flags & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                    self.close_slot(slot);
                    continue;
                }
                if flags & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
                    self.handle_readable(slot);
                }
                if flags & sys::EPOLLOUT != 0 {
                    self.settle(slot);
                }
            }
            let shutting_down = self.inner.is_shutting_down();
            if shutting_down || last_scan.elapsed() >= IDLE_POLL {
                self.scan();
                last_scan = Instant::now();
            }
            if shutting_down && self.conns.iter().all(Option::is_none) {
                return;
            }
        }
    }

    /// Places an accepted socket into a slab slot and registers it for
    /// reads. Slot generations make stale dispatcher replies harmless.
    fn register(&mut self, stream: TcpStream) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.next_generation += 1;
        let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
        if self
            .epoll
            .add(stream.as_raw_fd(), interest, slot as u64)
            .is_err()
        {
            self.free.push(slot);
            self.active.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.conns[slot] = Some(Conn {
            stream,
            generation: self.next_generation,
            rbuf: Vec::new(),
            out: VecDeque::new(),
            out_pos: 0,
            busy: None,
            close_after_flush: false,
            peer_eof: false,
            last_activity: Instant::now(),
            head_started: None,
            interest,
        });
    }

    fn close_slot(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            self.epoll.delete(conn.stream.as_raw_fd());
            self.free.push(slot);
            self.active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Reads until `WouldBlock`, then parses and routes what arrived.
    fn handle_readable(&mut self, slot: usize) {
        let mut dead = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let mut buf = [0u8; READ_BUF];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_slot(slot);
            return;
        }
        self.process(slot);
        self.settle(slot);
    }

    /// Parses and routes as many complete pipelined requests as the read
    /// buffer holds, stopping at a partial request, an admission (one
    /// in-flight job per connection), or a close-worthy error.
    fn process(&mut self, slot: usize) {
        let inner = Arc::clone(&self.inner);
        let handle = Arc::clone(&self.handle);
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.busy.is_some() || conn.close_after_flush {
                return;
            }
            match http::try_parse(&conn.rbuf, inner.config.max_body_bytes) {
                Ok(None) => {
                    // Partial request: arm (or keep) the read deadline;
                    // an empty buffer means we are idle between requests.
                    if conn.rbuf.is_empty() {
                        conn.head_started = None;
                    } else if conn.head_started.is_none() {
                        conn.head_started = Some(Instant::now());
                    }
                    return;
                }
                Ok(Some(parsed)) => {
                    conn.rbuf.drain(..parsed.consumed);
                    conn.head_started = None;
                    let keep_alive = parsed.request.keep_alive;
                    let replier = Replier::Event {
                        shard: Arc::clone(&handle),
                        slot,
                        generation: conn.generation,
                    };
                    match route(&inner, &parsed.request, replier) {
                        Routed::Now(mut response) => {
                            if !keep_alive || inner.is_shutting_down() {
                                response.close = true;
                            }
                            if response.close {
                                conn.close_after_flush = true;
                            }
                            queue_response(conn, response);
                        }
                        Routed::Queued(pending) => {
                            conn.busy = Some(Busy {
                                pending,
                                keep_alive,
                            });
                        }
                    }
                }
                Err(err) => {
                    // `try_parse` does no I/O, so this is always a
                    // protocol error with a response; close after it.
                    if let Some(mut response) = http_error_response(&inner, &err) {
                        response.close = true;
                        queue_response(conn, response);
                    }
                    conn.close_after_flush = true;
                    return;
                }
            }
        }
    }

    /// Delivers a dispatcher reply: build the response, resume parsing
    /// any pipelined requests buffered while busy, flush.
    fn deliver(&mut self, slot: usize, generation: u64, reply: Reply) {
        let inner = Arc::clone(&self.inner);
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.generation != generation {
                return;
            }
            let Some(busy) = conn.busy.take() else {
                return;
            };
            let mut response = reply_to_response(&inner, &busy.pending, reply);
            if !busy.keep_alive || inner.is_shutting_down() {
                response.close = true;
            }
            if response.close {
                conn.close_after_flush = true;
            }
            queue_response(conn, response);
        }
        self.process(slot);
        self.settle(slot);
    }

    /// Flushes pending output, closes the connection if its time has
    /// come, and re-syncs epoll interest with the connection state.
    fn settle(&mut self, slot: usize) {
        let close = {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let dead = flush_out(conn).is_err();
            let drained = conn.out.is_empty();
            if dead
                || (drained && conn.close_after_flush)
                || (drained && conn.peer_eof && conn.busy.is_none())
            {
                true
            } else {
                sync_interest(&self.epoll, conn, slot);
                false
            }
        };
        if close {
            self.close_slot(slot);
        }
    }

    /// Periodic timeout sweep: 408 stalled request reads, close idle
    /// keep-alive connections (all of them during shutdown), bound
    /// write stalls during shutdown so the drain cannot hang.
    fn scan(&mut self) {
        let now = Instant::now();
        let idle = Duration::from_millis(self.inner.config.idle_timeout_ms);
        let read = Duration::from_millis(self.inner.config.read_timeout_ms);
        let shutting_down = self.inner.is_shutting_down();
        for slot in 0..self.conns.len() {
            enum Action {
                Keep,
                Close,
                Timeout,
            }
            let action = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                if conn.busy.is_some() {
                    // Admitted work always completes; the reply path
                    // closes the connection on shutdown.
                    Action::Keep
                } else if !conn.out.is_empty() {
                    if shutting_down && now.duration_since(conn.last_activity) >= read {
                        Action::Close
                    } else {
                        Action::Keep
                    }
                } else if let Some(started) = conn.head_started {
                    if now.duration_since(started) >= read {
                        Action::Timeout
                    } else {
                        Action::Keep
                    }
                } else if shutting_down || now.duration_since(conn.last_activity) >= idle {
                    Action::Close
                } else {
                    Action::Keep
                }
            };
            match action {
                Action::Keep => {}
                Action::Close => self.close_slot(slot),
                Action::Timeout => {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        let mut response =
                            Response::error(408, "read_timeout", "request read deadline exceeded");
                        response.close = true;
                        conn.close_after_flush = true;
                        queue_response(conn, response);
                    }
                    self.settle(slot);
                }
            }
        }
    }
}

/// Serialises a response into output segments, mirroring
/// [`Response::write_to`] byte for byte: head, then either a plain body
/// or 16 KiB chunked frames. Cache-shared bodies are queued as `Arc`
/// slices — no copy.
fn queue_response(conn: &mut Conn, response: Response) {
    conn.out.push_back(OutBuf::Own(response.head_bytes()));
    let chunked = response.chunked;
    let body = response.body;
    if chunked {
        let len = body.len();
        let mut offset = 0;
        while offset < len {
            let end = (offset + CHUNK_SIZE).min(len);
            conn.out
                .push_back(OutBuf::Own(format!("{:x}\r\n", end - offset).into_bytes()));
            match &body {
                Body::Shared(arc) => {
                    conn.out
                        .push_back(OutBuf::Shared(Arc::clone(arc), offset, end));
                }
                Body::Owned(v) => conn.out.push_back(OutBuf::Own(v[offset..end].to_vec())),
            }
            conn.out.push_back(OutBuf::Own(b"\r\n".to_vec()));
            offset = end;
        }
        conn.out.push_back(OutBuf::Own(b"0\r\n\r\n".to_vec()));
    } else if !body.is_empty() {
        match body {
            Body::Owned(v) => conn.out.push_back(OutBuf::Own(v)),
            Body::Shared(arc) => {
                let len = arc.len();
                conn.out.push_back(OutBuf::Shared(arc, 0, len));
            }
        }
    }
}

/// Writes as much pending output as the socket accepts (vectored, up to
/// [`WRITE_VECTORS`] segments per call). `Err` means the transport died.
fn flush_out(conn: &mut Conn) -> Result<(), ()> {
    loop {
        if conn.out.is_empty() {
            return Ok(());
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(WRITE_VECTORS);
        for (i, seg) in conn.out.iter().take(WRITE_VECTORS).enumerate() {
            let bytes = seg.bytes();
            let start = if i == 0 { conn.out_pos } else { 0 };
            slices.push(IoSlice::new(&bytes[start..]));
        }
        match conn.stream.write_vectored(&slices) {
            Ok(0) => return Err(()),
            Ok(mut n) => {
                conn.last_activity = Instant::now();
                while n > 0 {
                    let front_len = conn.out.front().map_or(0, |seg| seg.bytes().len());
                    let remaining = front_len - conn.out_pos;
                    if n >= remaining {
                        n -= remaining;
                        conn.out.pop_front();
                        conn.out_pos = 0;
                    } else {
                        conn.out_pos += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
}

/// Re-registers the connection's epoll interest to match its state:
/// reads wanted unless busy/closing, writes wanted while output pends.
fn sync_interest(epoll: &Epoll, conn: &mut Conn, slot: usize) {
    let mut desired = sys::EPOLLRDHUP;
    if conn.busy.is_none() && !conn.close_after_flush {
        desired |= sys::EPOLLIN;
    }
    if !conn.out.is_empty() {
        desired |= sys::EPOLLOUT;
    }
    if desired != conn.interest
        && epoll
            .modify(conn.stream.as_raw_fd(), desired, slot as u64)
            .is_ok()
    {
        conn.interest = desired;
    }
}
