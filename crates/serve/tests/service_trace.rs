//! `GET /v1/trace` streaming contract: the chunked NDJSON body a client
//! decodes is byte-identical to the in-process per-round trace of the
//! same spec ([`Scenario::run_traced`]) — the bit-identity contract of
//! DESIGN.md §11 extended from summaries to full traces.

use gather_config::Class;
use gather_serve::{Client, ScenarioSpec, ServeConfig, Server};

fn query(class: Class, n: usize, seed: u64) -> String {
    format!(
        "workload=class&class={}&n={n}&seed={seed}&max_rounds=2000",
        class.short_name()
    )
}

#[test]
fn streamed_traces_are_byte_identical_to_in_process_runs() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    for (class, n) in [
        (Class::Bivalent, 8),
        (Class::Multiple, 9),
        (Class::Collinear1W, 8),
        (Class::Collinear2W, 8),
        (Class::QuasiRegular, 9),
        (Class::Asymmetric, 8),
    ] {
        let spec = ScenarioSpec::from_query(&query(class, n, 7)).expect("query spec");
        let (metrics, expected) = spec.to_scenario().expect("scenario").run_traced();

        let response = client.get_trace(&query(class, n, 7)).unwrap();
        assert_eq!(response.status, 200, "{class:?}: {}", response.text());
        assert_eq!(
            response.header("transfer-encoding"),
            Some("chunked"),
            "{class:?}: traces stream chunked"
        );
        assert_eq!(
            response.header("content-type"),
            Some("application/x-ndjson"),
            "{class:?}"
        );
        assert_eq!(
            response.body,
            expected.as_bytes(),
            "{class:?}: streamed trace must match the in-process trace"
        );
        assert_eq!(
            response.text().lines().count() as u64,
            metrics.rounds,
            "{class:?}: one line per simulated round"
        );
    }
    server.shutdown();
}

#[test]
fn trace_requests_are_validated_and_counted() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    let bad = client.get_trace("n=3").unwrap();
    assert_eq!(bad.status, 400);
    assert!(
        bad.text().contains("\"code\":\"bad_spec\""),
        "{}",
        bad.text()
    );

    let over = client
        .get_trace(&format!(
            "n=8&max_rounds={}",
            gather_serve::TRACE_MAX_ROUNDS + 1
        ))
        .unwrap();
    assert_eq!(over.status, 400, "{}", over.text());
    assert!(over.text().contains("max_rounds"), "{}", over.text());

    assert_eq!(
        client.request("POST", "/v1/trace", b"{}").unwrap().status,
        405
    );

    // A defaulted trace (empty query) runs the default spec.
    let ok = client.get_trace("class=A&n=8&max_rounds=2000").unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());
    let metrics = client.get("/v1/metrics").unwrap().text();
    assert!(
        metrics.contains("gather_requests_completed_total 1\n"),
        "{metrics}"
    );
    server.shutdown();
}
