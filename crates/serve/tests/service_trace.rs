//! `/v1/trace` streaming contract: the chunked trace/v2 document a
//! client decodes is the spec's header line followed by round lines
//! byte-identical to the in-process per-round trace of the same spec
//! ([`Scenario::run_traced`]) — the bit-identity contract of DESIGN.md
//! §11 extended from summaries to full traces. Both wire forms (JSON
//! `POST`, deprecated query-param `GET`) must produce byte-identical
//! documents, and only the GET form may carry a `Deprecation` header.

use gather_config::Class;
use gather_serve::{Client, ScenarioSpec, ServeConfig, Server};

fn query(class: Class, n: usize, seed: u64) -> String {
    format!(
        "workload=class&class={}&n={n}&seed={seed}&max_rounds=2000",
        class.short_name()
    )
}

#[test]
fn streamed_traces_are_byte_identical_to_in_process_runs() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    for (class, n) in [
        (Class::Bivalent, 8),
        (Class::Multiple, 9),
        (Class::Collinear1W, 8),
        (Class::Collinear2W, 8),
        (Class::QuasiRegular, 9),
        (Class::Asymmetric, 8),
    ] {
        let spec = ScenarioSpec::from_query(&query(class, n, 7)).expect("query spec");
        let (metrics, rounds_jsonl) = spec.to_scenario().expect("scenario").run_traced();
        let expected = format!("{}{rounds_jsonl}", spec.trace_header());

        let response = client.get_trace(&query(class, n, 7)).unwrap();
        assert_eq!(response.status, 200, "{class:?}: {}", response.text());
        assert_eq!(
            response.header("transfer-encoding"),
            Some("chunked"),
            "{class:?}: traces stream chunked"
        );
        assert_eq!(
            response.header("content-type"),
            Some("application/x-ndjson"),
            "{class:?}"
        );
        assert_eq!(
            response.header("deprecation"),
            Some("true"),
            "{class:?}: the query-param GET form is deprecated"
        );
        assert_eq!(
            response.body,
            expected.as_bytes(),
            "{class:?}: streamed document must be the header plus the \
             in-process trace"
        );
        let text = response.text();
        assert!(
            text.starts_with("{\"schema\":\"trace/v2\","),
            "{class:?}: document leads with the v2 header: {text:?}"
        );
        assert_eq!(
            text.lines().count() as u64,
            metrics.rounds + 1,
            "{class:?}: one line per simulated round plus the header"
        );

        // The JSON POST form: same validator, same cache key, same
        // document bytes — and no deprecation marker.
        let posted = client.post_trace(&spec.to_json()).unwrap();
        assert_eq!(posted.status, 200, "{class:?}: {}", posted.text());
        assert_eq!(
            posted.body, response.body,
            "{class:?}: POST and GET documents must be byte-identical"
        );
        assert_eq!(
            posted.header("deprecation"),
            None,
            "{class:?}: the POST form is not deprecated"
        );
    }
    server.shutdown();
}

#[test]
fn trace_requests_are_validated_and_counted() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    let bad = client.get_trace("n=3").unwrap();
    assert_eq!(bad.status, 400);
    assert!(
        bad.text().contains("\"code\":\"bad_spec\""),
        "{}",
        bad.text()
    );

    // POST shares the same validator and budget checks.
    let bad_post = client.post_trace(r#"{"n":3}"#).unwrap();
    assert_eq!(bad_post.status, 400, "{}", bad_post.text());
    assert!(
        bad_post.text().contains("\"code\":\"bad_spec\""),
        "{}",
        bad_post.text()
    );
    let bad_json = client.post_trace("not json").unwrap();
    assert_eq!(bad_json.status, 400, "{}", bad_json.text());

    let over = client
        .get_trace(&format!(
            "n=8&max_rounds={}",
            gather_serve::TRACE_MAX_ROUNDS + 1
        ))
        .unwrap();
    assert_eq!(over.status, 400, "{}", over.text());
    assert!(over.text().contains("max_rounds"), "{}", over.text());

    // Only GET and POST reach the trace handler.
    assert_eq!(
        client.request("PUT", "/v1/trace", b"{}").unwrap().status,
        405
    );

    let ok = client.get_trace("class=A&n=8&max_rounds=2000").unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());
    let metrics = client.get("/v1/metrics").unwrap().text();
    assert!(
        metrics.contains("gather_requests_completed_total 1\n"),
        "{metrics}"
    );

    // The POST twin of the spec above is a cache hit (shared key across
    // wire forms) and still answers without a deprecation marker.
    let spec = ScenarioSpec::from_query("class=A&n=8&max_rounds=2000").unwrap();
    let hit = client.post_trace(&spec.to_json()).unwrap();
    assert_eq!(hit.status, 200, "{}", hit.text());
    assert_eq!(hit.header("x-gather-cache"), Some("hit"), "shared key");
    assert_eq!(hit.header("deprecation"), None);
    assert_eq!(hit.body, ok.body, "cache hit serves identical bytes");
    server.shutdown();
}
