//! The determinism contract, end to end: `POST /run` over real TCP must
//! return bytes identical to running the same specs in-process and
//! serialising with `RunMetrics::to_jsonl` — for every configuration
//! class, for batches, and repeatably across requests.

use gather_config::Class;
use gather_serve::{Client, ScenarioSpec, ServeConfig, Server};

fn test_server() -> Server {
    Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("start server on an ephemeral port")
}

fn local_jsonl(spec: &ScenarioSpec) -> String {
    format!(
        "{}\n",
        spec.to_scenario().expect("valid spec").run().to_jsonl()
    )
}

#[test]
fn served_bytes_match_in_process_runs_for_all_six_classes() {
    let server = test_server();
    let mut client = Client::connect(&server.addr()).expect("connect");
    for class in Class::all() {
        let spec = ScenarioSpec {
            class: Some(class),
            seed: 13,
            faults: 1,
            max_rounds: 2_000,
            ..ScenarioSpec::default()
        };
        let expected = local_jsonl(&spec);
        let response = client.post_run(&spec.to_json()).expect("POST /run");
        assert_eq!(
            response.status,
            200,
            "class {}: {}",
            class.short_name(),
            response.text()
        );
        assert_eq!(
            response.header("content-type"),
            Some("application/x-ndjson")
        );
        assert_eq!(
            response.body,
            expected.as_bytes(),
            "class {}: served bytes != in-process bytes",
            class.short_name()
        );
    }
    server.shutdown();
}

#[test]
fn batched_scenarios_come_back_in_request_order_bit_identical() {
    let server = test_server();
    let specs: Vec<ScenarioSpec> = (0..5)
        .map(|i| ScenarioSpec {
            seed: 100 + i,
            faults: (i % 3) as usize,
            max_rounds: 1_500,
            ..ScenarioSpec::default()
        })
        .collect();
    let expected: String = specs.iter().map(local_jsonl).collect();
    let body = format!(
        "{{\"scenarios\":[{}]}}",
        specs
            .iter()
            .map(ScenarioSpec::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut client = Client::connect(&server.addr()).expect("connect");
    let response = client.post_run(&body).expect("POST /run");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.body, expected.as_bytes());
    // The pool fans the batch out across workers; order and bytes must
    // nevertheless be reproducible on a second request.
    let again = client.post_run(&body).expect("second POST /run");
    assert_eq!(again.body, response.body);
    server.shutdown();
}

#[test]
fn mega_batch_endpoint_is_bit_identical_to_run_and_in_process() {
    let server = test_server();
    let specs: Vec<ScenarioSpec> = (0..6)
        .map(|i| ScenarioSpec {
            seed: 300 + i,
            faults: (i % 3) as usize,
            max_rounds: 1_200,
            ..ScenarioSpec::default()
        })
        .collect();
    let expected: String = specs.iter().map(local_jsonl).collect();
    let body = format!(
        "{{\"scenarios\":[{}]}}",
        specs
            .iter()
            .map(ScenarioSpec::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut client = Client::connect(&server.addr()).expect("connect");
    let batched = client.post_batch(&body).expect("POST /v1/batch");
    assert_eq!(batched.status, 200, "{}", batched.text());
    assert_eq!(
        batched.body,
        expected.as_bytes(),
        "/v1/batch (columnar lanes) must serve in-process bytes"
    );
    // There is no legacy alias for the mega-batch endpoint.
    let legacy = client
        .request("POST", "/batch", body.as_bytes())
        .expect("POST /batch");
    assert_eq!(legacy.status, 404);
    server.shutdown();
}

#[test]
fn async_scenarios_are_served_bit_identically() {
    let server = test_server();
    let mut client = Client::connect(&server.addr()).expect("connect");
    // Full knob soup: event-heap scheduler, non-rigid motion, skewed
    // speeds — served bytes must still equal the in-process run.
    let spec = ScenarioSpec {
        scheduler: "async",
        rigid: false,
        speed_skew: 0.5,
        seed: 31,
        faults: 2,
        max_rounds: 20_000,
        ..ScenarioSpec::default()
    };
    let expected = local_jsonl(&spec);
    assert!(
        expected.contains("\"async_events\":"),
        "async run must report its event count"
    );
    let response = client.post_run(&spec.to_json()).expect("POST /run");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.body, expected.as_bytes());
    // Repeatable across requests (and through the result cache).
    let again = client.post_run(&spec.to_json()).expect("second POST /run");
    assert_eq!(again.body, response.body);
    // The metrics exposition now carries the event-heap counter.
    let metrics = client.get("/v1/metrics").expect("GET /v1/metrics");
    let text = metrics.text();
    let events: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("gather_sim_async_events_total "))
        .expect("gather_sim_async_events_total exposed")
        .parse()
        .expect("counter is an integer");
    assert!(events > 0, "async events counter must accumulate:\n{text}");
    server.shutdown();
}

#[test]
fn async_traces_round_trip_over_the_wire() {
    let server = test_server();
    let mut client = Client::connect(&server.addr()).expect("connect");
    let spec = ScenarioSpec {
        scheduler: "async",
        seed: 5,
        max_rounds: 10_000,
        ..ScenarioSpec::default()
    };
    let (_, rounds) = spec.to_scenario().expect("valid spec").run_traced();
    let expected = format!("{}{rounds}", spec.trace_header());
    let response = client
        .get_trace("scheduler=async&seed=5&max_rounds=10000")
        .expect("GET /v1/trace");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.body, expected.as_bytes());
    assert!(
        response.text().starts_with("{\"schema\":\"trace/v2\","),
        "async documents carry the v2 header too"
    );
    assert!(
        expected.contains("\"engine\":\"async\""),
        "header names the event-heap engine"
    );
    server.shutdown();
}

#[test]
fn invalid_async_combos_get_structured_400s() {
    let server = test_server();
    let mut client = Client::connect(&server.addr()).expect("connect");
    for body in [
        r#"{"scheduler":"full","rigidity":"non-rigid"}"#,
        r#"{"speed_skew":1.5}"#,
        r#"{"scheduler":"async","rigidity":"bendy"}"#,
        r#"{"scheduler":"async","speed_skew":99}"#,
    ] {
        let response = client.post_run(body).expect("POST /run");
        assert_eq!(response.status, 400, "{body}: {}", response.text());
        let text = response.text();
        assert!(
            text.contains("\"code\":\"bad_spec\"")
                || text.contains("\"code\":\"malformed_request\""),
            "{body}: error must be structured JSON, got {text}"
        );
    }
    server.shutdown();
}

#[test]
fn workload_families_are_served_identically_too() {
    let server = test_server();
    let mut client = Client::connect(&server.addr()).expect("connect");
    for workload in [
        "scatter",
        "clusters",
        "co-circular",
        "near-bivalent",
        "axial",
    ] {
        let spec = ScenarioSpec {
            workload: workload.to_string(),
            class: None,
            n: 9,
            seed: 21,
            max_rounds: 1_000,
            ..ScenarioSpec::default()
        };
        let expected = local_jsonl(&spec);
        let response = client.post_run(&spec.to_json()).expect("POST /run");
        assert_eq!(response.status, 200, "{workload}: {}", response.text());
        assert_eq!(
            response.body,
            expected.as_bytes(),
            "{workload}: served bytes != in-process bytes"
        );
    }
    server.shutdown();
}
