//! The deterministic result cache, end to end over real TCP: repeated
//! requests must be answered from the cache with bit-identical payloads,
//! report their disposition in `x-gather-cache`/`Age` headers, and show
//! up in the `/v1/metrics` counters. Determinism is what makes this
//! sound (DESIGN.md §16), so byte-identity — not just status codes — is
//! asserted throughout.

use gather_serve::{Client, ScenarioSpec, ServeConfig, Server};

fn spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        max_rounds: 800,
        ..ScenarioSpec::default()
    }
}

#[test]
fn repeated_runs_hit_the_cache_with_identical_bytes() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    let body = spec(11).to_json();
    let cold = client.post_run(&body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("x-gather-cache"), Some("miss"));
    assert_eq!(cold.header("age"), None, "a miss has no age");

    let hot = client.post_run(&body).unwrap();
    assert_eq!(hot.status, 200);
    assert_eq!(hot.header("x-gather-cache"), Some("hit"));
    let age: u64 = hot
        .header("age")
        .expect("hits carry an Age header")
        .parse()
        .expect("age is seconds");
    assert!(age < 120, "age must reflect storage time, got {age}");
    assert_eq!(
        hot.body, cold.body,
        "cached payload must be bit-identical to the computed one"
    );

    // In-process ground truth: the cache serves exactly to_jsonl bytes.
    let expected = format!(
        "{}\n",
        spec(11).to_scenario().expect("valid").run().to_jsonl()
    );
    assert_eq!(hot.body, expected.as_bytes());

    let counters = server.cache_counters();
    assert_eq!(counters.hits, 1, "{counters:?}");
    assert_eq!(counters.misses, 1, "{counters:?}");
    server.shutdown();
}

#[test]
fn key_canonicalisation_hits_across_equivalent_spellings() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    let canonical = spec(23).to_json();
    let cold = client.post_run(&canonical).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.text());

    // Same spec, different JSON: reordered keys, scattered whitespace,
    // explicitly spelled defaults — must hit the same cache entry
    // (canonicalisation happens in the parser; the key sees only the
    // typed spec).
    let scrambled = String::from(
        "{ \"max_rounds\" : 800 ,\n  \"seed\" : 23 ,\n  \"workload\" : \"class\" ,\n  \"faults\" : 0 }",
    );
    let hot = client.post_run(&scrambled).unwrap();
    assert_eq!(hot.status, 200, "{}", hot.text());
    assert_eq!(
        hot.header("x-gather-cache"),
        Some("hit"),
        "canonicalised specs must share one cache key"
    );
    assert_eq!(hot.body, cold.body);
    server.shutdown();
}

#[test]
fn mixed_batches_stitch_hits_and_misses_in_request_order() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    // Warm seed 31 only.
    let warm = client.post_run(&spec(31).to_json()).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.text());

    // A batch of [cold 37, warm 31, cold 41]: the response must be in
    // request order and bit-identical to running all three in-process.
    let batch = format!(
        "{{\"scenarios\":[{},{},{}]}}",
        spec(37).to_json(),
        spec(31).to_json(),
        spec(41).to_json()
    );
    let mixed = client.post_run(&batch).unwrap();
    assert_eq!(mixed.status, 200, "{}", mixed.text());
    assert_eq!(
        mixed.header("x-gather-cache"),
        Some("miss"),
        "a partially cached batch still executes, so it reports miss"
    );
    let expected: String = [37u64, 31, 41]
        .into_iter()
        .map(|seed| {
            format!(
                "{}\n",
                spec(seed).to_scenario().expect("valid").run().to_jsonl()
            )
        })
        .collect();
    assert_eq!(mixed.body, expected.as_bytes());

    // Everything is warm now: the whole batch is answered at admission.
    let hot = client.post_run(&batch).unwrap();
    assert_eq!(hot.header("x-gather-cache"), Some("hit"));
    assert_eq!(hot.body, mixed.body);
    server.shutdown();
}

#[test]
fn traces_are_cached_whole_and_served_identically() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    let query = "n=8&seed=5&max_rounds=2000";
    let cold = client.get_trace(query).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("x-gather-cache"), Some("miss"));
    let hot = client.get_trace(query).unwrap();
    assert_eq!(hot.status, 200);
    assert_eq!(hot.header("x-gather-cache"), Some("hit"));
    assert!(hot.header("age").is_some());
    assert_eq!(
        hot.body, cold.body,
        "cached trace must be the same NDJSON bytes"
    );
    server.shutdown();
}

#[test]
fn metrics_expose_cache_counters_and_capacity_zero_disables() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");
    let body = spec(53).to_json();
    assert_eq!(client.post_run(&body).unwrap().status, 200);
    assert_eq!(
        client.post_run(&body).unwrap().header("x-gather-cache"),
        Some("hit")
    );
    let metrics = client.get("/v1/metrics").unwrap().text();
    assert!(metrics.contains("gather_cache_hits_total 1\n"), "{metrics}");
    assert!(metrics.contains("gather_cache_misses_total "), "{metrics}");
    assert!(metrics.contains("gather_cache_hit_ratio "), "{metrics}");
    server.shutdown();

    // cache_entries: Some(0) switches the whole subsystem off: no
    // headers, no metrics lines, repeated requests recompute.
    let server = Server::start(ServeConfig {
        cache_entries: Some(0),
        ..ServeConfig::default()
    })
    .expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");
    let first = client.post_run(&body).unwrap();
    let second = client.post_run(&body).unwrap();
    assert_eq!(first.header("x-gather-cache"), None);
    assert_eq!(second.header("x-gather-cache"), None);
    assert_eq!(first.body, second.body, "determinism holds regardless");
    let metrics = client.get("/v1/metrics").unwrap().text();
    assert!(
        !metrics.contains("gather_cache_hits_total"),
        "disabled cache must not advertise counters: {metrics}"
    );
    server.shutdown();
}
