//! HTTP behaviour of the service: status codes, backpressure, deadlines,
//! keep-alive, metrics and graceful shutdown — all over real TCP.

use gather_serve::{Client, ScenarioSpec, ServeConfig, Server};
use std::time::Duration;

/// A deterministic slow job: a 64-robot scatter under the δ-motion
/// adversary with a tiny δ needs ~13k rounds to gather, so any smaller
/// round cap burns its whole budget at a stable ~4 ms/round — long
/// enough to hold the dispatcher while a test fills the queue behind it.
fn slow_spec(rounds: u64) -> String {
    ScenarioSpec {
        workload: "scatter".to_string(),
        class: None,
        n: 64,
        delta: 0.001,
        motion: "delta",
        max_rounds: rounds,
        ..ScenarioSpec::default()
    }
    .to_json()
}

fn quick_spec() -> String {
    ScenarioSpec {
        max_rounds: 500,
        ..ScenarioSpec::default()
    }
    .to_json()
}

#[test]
fn health_metrics_and_errors() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    assert_eq!(client.get("/v1/healthz").unwrap().status, 200);
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/v1/nope").unwrap().status, 404);
    assert_eq!(client.request("PUT", "/v1/run", b"{}").unwrap().status, 405);
    let bad_json = client.request("POST", "/v1/run", b"not json").unwrap();
    assert_eq!(bad_json.status, 400);
    let text = bad_json.text();
    assert!(
        text.contains("\"code\":\"bad_spec\"")
            && text.contains("\"message\":")
            && text.contains("\"retryable\":false"),
        "errors must be structured JSON: {text}"
    );
    assert_eq!(
        client.post_run("{\"n\":3}").unwrap().status,
        400,
        "out-of-range spec"
    );
    assert_eq!(
        client.post_run("{\"class\":\"B\",\"n\":9}").unwrap().status,
        400,
        "class B needs even n — a client error, not a worker panic"
    );

    // Two scenarios in one request: single-scenario jobs run inline on
    // their dispatcher lane, so only a multi-scenario job exercises the
    // worker pool (whose histograms are asserted below).
    let two = format!(
        "{{\"scenarios\":[{},{}]}}",
        quick_spec(),
        ScenarioSpec {
            seed: 7,
            max_rounds: 500,
            ..ScenarioSpec::default()
        }
        .to_json()
    );
    let ok = client.post_run(&two).unwrap();
    assert_eq!(ok.status, 200);

    let metrics = client.get("/v1/metrics").unwrap().text();
    assert!(
        metrics.contains("gather_requests_completed_total 1\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("gather_requests_rejected_malformed_total 3\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("gather_request_latency_ms{quantile=\"0.5\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("gather_request_phase_parse_ns_count")
            && metrics.contains("gather_request_phase_queue_wait_ns_count")
            && metrics.contains("gather_request_phase_execute_ns_count")
            && metrics.contains("gather_pool_job_run_time_ns_count"),
        "request-phase and pool histograms must be exposed: {metrics}"
    );
    server.shutdown();
}

#[test]
fn legacy_paths_alias_v1_with_a_deprecation_header() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    for path in ["/healthz", "/metrics"] {
        let legacy = client.get(path).unwrap();
        assert_eq!(legacy.status, 200, "{path}");
        assert_eq!(legacy.header("deprecation"), Some("true"), "{path}");
        let v1 = client.get(&format!("/v1{path}")).unwrap();
        assert_eq!(v1.status, 200, "/v1{path}");
        assert_eq!(v1.header("deprecation"), None, "/v1{path}");
    }
    let legacy_run = client
        .request("POST", "/run", quick_spec().as_bytes())
        .unwrap();
    assert_eq!(legacy_run.status, 200);
    assert_eq!(legacy_run.header("deprecation"), Some("true"));
    let v1_run = client.post_run(&quick_spec()).unwrap();
    assert_eq!(v1_run.status, 200);
    assert_eq!(v1_run.header("deprecation"), None);
    assert_eq!(
        legacy_run.body, v1_run.body,
        "the alias serves bit-identical bodies"
    );
    // `/trace` is new under /v1; it never existed un-prefixed, so there
    // is no legacy alias to keep.
    assert_eq!(client.get("/trace?n=8").unwrap().status, 404);
    server.shutdown();
}

#[test]
fn oversized_bodies_get_413() {
    let server = Server::start(ServeConfig {
        max_body_bytes: 256,
        ..ServeConfig::default()
    })
    .expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");
    let big = format!("{{\"pad\":\"{}\"}}", "x".repeat(1024));
    let response = client.request("POST", "/run", big.as_bytes()).unwrap();
    assert_eq!(response.status, 413);
    server.shutdown();
}

#[test]
fn oversized_request_heads_get_431() {
    use std::io::{Read, Write};
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    // Each header line stays under the per-line cap; the total crosses
    // the 16 KiB head budget.
    let pad = "x".repeat(7000);
    write!(stream, "GET /v1/healthz HTTP/1.1\r\n").unwrap();
    for i in 0..3 {
        write!(stream, "h{i}: {pad}\r\n").unwrap();
    }
    write!(stream, "\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 431 "),
        "oversized heads must get 431, got: {}",
        raw.lines().next().unwrap_or("")
    );
    assert!(raw.contains("\"code\":\"headers_too_large\""), "{raw}");
    server.shutdown();
}

#[test]
fn stalled_request_reads_get_408() {
    use std::io::{Read, Write};
    let server = Server::start(ServeConfig {
        read_timeout_ms: 300,
        ..ServeConfig::default()
    })
    .expect("start");
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    // Head promises a body that never arrives: the per-request read
    // deadline must answer 408 and close, not hold the slot forever.
    write!(
        stream,
        "POST /v1/run HTTP/1.1\r\ncontent-length: 100\r\n\r\n"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 408 "),
        "stalled reads must get 408, got: {}",
        raw.lines().next().unwrap_or("")
    );
    assert!(raw.contains("\"code\":\"read_timeout\""), "{raw}");
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_bounded() {
    let server = Server::start(ServeConfig {
        idle_timeout_ms: 300,
        ..ServeConfig::default()
    })
    .expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");
    assert_eq!(client.get("/v1/healthz").unwrap().status, 200);
    std::thread::sleep(Duration::from_millis(800));
    assert!(
        client.get("/v1/healthz").is_err(),
        "the server must have closed the idle connection"
    );
    server.shutdown();
}

#[test]
fn threaded_engine_serves_identical_bytes() {
    let threaded = Server::start(ServeConfig {
        event_loop: false,
        ..ServeConfig::default()
    })
    .expect("start threaded");
    assert_eq!(threaded.engine(), "threaded");
    let default_engine = Server::start(ServeConfig::default()).expect("start default");

    let mut a = Client::connect(&threaded.addr()).expect("connect");
    let mut b = Client::connect(&default_engine.addr()).expect("connect");
    let ra = a.post_run(&quick_spec()).unwrap();
    let rb = b.post_run(&quick_spec()).unwrap();
    assert_eq!(ra.status, 200);
    assert_eq!(rb.status, 200);
    assert_eq!(
        ra.body, rb.body,
        "both engines must serve bit-identical payloads"
    );
    threaded.shutdown();
    default_engine.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");
    let mut bodies = Vec::new();
    for _ in 0..3 {
        let response = client.post_run(&quick_spec()).unwrap();
        assert_eq!(response.status, 200);
        bodies.push(response.body);
    }
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[1], bodies[2]);
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_429_and_retry_after() {
    // One worker, capacity-1 queue: one slow job executing, one queued —
    // the third must bounce with 429 immediately.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // Stagger the slow jobs so the first is executing and the second is
    // the queue's sole slot before the probe fires.
    let slow = slow_spec(600);
    let mut busy = Vec::new();
    for _ in 0..2 {
        let addr = addr.clone();
        let slow = slow.clone();
        busy.push(std::thread::spawn(move || {
            Client::connect(&addr)
                .unwrap()
                .post_run(&slow)
                .unwrap()
                .status
        }));
        std::thread::sleep(Duration::from_millis(300));
    }

    let mut probe = Client::connect(&addr).expect("connect");
    let rejected = probe.post_run(&quick_spec()).unwrap();
    assert_eq!(rejected.status, 429, "{}", rejected.text());
    assert_eq!(
        rejected.header("retry-after"),
        Some("1"),
        "backpressure must carry a retry hint"
    );
    assert!(
        rejected.text().contains("\"code\":\"queue_full\"")
            && rejected.text().contains("\"retryable\":true"),
        "a 429 is retryable by definition: {}",
        rejected.text()
    );

    for handle in busy {
        assert_eq!(handle.join().unwrap(), 200, "admitted slow jobs complete");
    }
    let metrics = probe.get("/metrics").unwrap().text();
    assert!(
        metrics.contains("gather_requests_rejected_full_total"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn expired_deadline_gets_504_without_running() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // Hold the dispatcher with a slow job...
    let slow = slow_spec(300);
    let busy = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            Client::connect(&addr)
                .unwrap()
                .post_run(&slow)
                .unwrap()
                .status
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // ...then queue a request whose deadline expires while it waits.
    let impatient = format!("{{\"scenarios\":[{}],\"deadline_ms\":1}}", quick_spec());
    let response = Client::connect(&addr)
        .unwrap()
        .post_run(&impatient)
        .unwrap();
    assert_eq!(response.status, 504, "{}", response.text());

    assert_eq!(busy.join().unwrap(), 200);
    let metrics = Client::connect(&addr)
        .unwrap()
        .get("/metrics")
        .unwrap()
        .text();
    assert!(
        metrics.contains("gather_requests_expired_total 1\n"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_admitted_work_and_stops_answering() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // Admit a job slow enough that shutdown provably overlaps it.
    let slow = slow_spec(300);
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || Client::connect(&addr).unwrap().post_run(&slow).unwrap())
    };
    std::thread::sleep(Duration::from_millis(100));

    server.shutdown();

    // The admitted request was drained, not dropped.
    let response = in_flight.join().unwrap();
    assert_eq!(response.status, 200, "admitted work survives shutdown");
    assert!(!response.body.is_empty());

    // And the listener is gone.
    assert!(
        Client::connect(&addr)
            .and_then(|mut c| c.get("/healthz"))
            .is_err(),
        "port must stop answering after shutdown"
    );
}

#[test]
fn shutdown_with_idle_keep_alive_connections_does_not_hang() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let addr = server.addr();
    // Three idle keep-alive connections (one did a request first).
    let mut first = Client::connect(&addr).unwrap();
    assert_eq!(first.get("/healthz").unwrap().status, 200);
    let _second = Client::connect(&addr).unwrap();
    let _third = Client::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must not wait on idle connections ({}ms)",
        started.elapsed().as_millis()
    );
}
