//! **Gated behind `--features external-deps`** (hermetic-build policy,
//! DESIGN.md §8): this suite needs the external `proptest` package, which
//! the default offline profile does not resolve. The same properties are
//! covered by the in-tree seeded-loop tests in `seeded_properties.rs`.
#![cfg(feature = "external-deps")]

//! Property-based tests of the geometry kernel.

use gather_geom::angle::{cw_angle, normalize_tau, rotate_ccw_around, rotate_cw_around};
use gather_geom::predicates::{is_between, orient2d, Orientation};
use gather_geom::{
    convex_hull, smallest_enclosing_circle, weber_objective, weber_point_weiszfeld, Point, Segment,
    Similarity, Tol, Vec2,
};
use proptest::prelude::*;
use std::f64::consts::TAU;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000i32..1000, -1000i32..1000).prop_map(|(x, y)| Point::new(x as f64 / 50.0, y as f64 / 50.0))
}

fn arb_points(lo: usize, hi: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), lo..=hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn orientation_antisymmetry(a in arb_point(), b in arb_point(), c in arb_point()) {
        let o1 = orient2d(a, b, c);
        let o2 = orient2d(b, a, c);
        match o1 {
            Orientation::Collinear => prop_assert_eq!(o2, Orientation::Collinear),
            Orientation::Clockwise => prop_assert_eq!(o2, Orientation::CounterClockwise),
            Orientation::CounterClockwise => prop_assert_eq!(o2, Orientation::Clockwise),
        }
    }

    #[test]
    fn orientation_cyclic_invariance(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert_eq!(orient2d(a, b, c), orient2d(b, c, a));
    }

    #[test]
    fn angles_normalise_into_tau(theta in -100.0f64..100.0) {
        let t = normalize_tau(theta);
        prop_assert!((0.0..TAU).contains(&t));
        // Same residue class.
        let diff = (theta - t) / TAU;
        prop_assert!((diff - diff.round()).abs() < 1e-9);
    }

    #[test]
    fn cw_rotation_matches_cw_angle(
        p in arb_point(),
        c in arb_point(),
        theta in 0.0f64..TAU,
    ) {
        prop_assume!(p.dist(c) > 0.1);
        let r = rotate_cw_around(p, c, theta);
        // Radius preserved.
        prop_assert!((c.dist(p) - c.dist(r)).abs() < 1e-9);
        // The clockwise angle from the original to the rotated direction
        // equals theta.
        let measured = cw_angle(p - c, r - c);
        let diff = (measured - theta).abs().min(TAU - (measured - theta).abs());
        prop_assert!(diff < 1e-9, "theta={theta} measured={measured}");
    }

    #[test]
    fn rotations_invert(p in arb_point(), c in arb_point(), theta in 0.0f64..TAU) {
        let back = rotate_ccw_around(rotate_cw_around(p, c, theta), c, theta);
        prop_assert!(back.dist(p) < 1e-9);
    }

    #[test]
    fn similarity_preserves_distance_ratios(
        a in arb_point(), b in arb_point(), c in arb_point(),
        theta in 0.0f64..TAU, scale in 0.1f64..10.0, origin in arb_point(),
    ) {
        prop_assume!(a.dist(b) > 0.1 && a.dist(c) > 0.1);
        let s = Similarity::new(theta, scale, origin);
        let ratio_before = a.dist(b) / a.dist(c);
        let ratio_after = s.apply(a).dist(s.apply(b)) / s.apply(a).dist(s.apply(c));
        prop_assert!((ratio_before - ratio_after).abs() < 1e-6 * ratio_before.max(1.0));
    }

    #[test]
    fn similarity_preserves_orientation(
        a in arb_point(), b in arb_point(), c in arb_point(),
        theta in 0.0f64..TAU, scale in 0.1f64..10.0, origin in arb_point(),
    ) {
        let s = Similarity::new(theta, scale, origin);
        let before = orient2d(a, b, c);
        prop_assume!(before != Orientation::Collinear);
        prop_assert_eq!(before, orient2d(s.apply(a), s.apply(b), s.apply(c)));
    }

    #[test]
    fn hull_is_idempotent(pts in arb_points(3, 20)) {
        let h1 = convex_hull(&pts);
        let h2 = convex_hull(&h1);
        prop_assert_eq!(h1.len(), h2.len());
    }

    #[test]
    fn hull_vertices_are_input_points(pts in arb_points(1, 20)) {
        let hull = convex_hull(&pts);
        for v in &hull {
            prop_assert!(pts.contains(v));
        }
    }

    #[test]
    fn sec_grows_monotonically(pts in arb_points(2, 15), extra in arb_point()) {
        let before = smallest_enclosing_circle(&pts);
        let mut more = pts.clone();
        more.push(extra);
        let after = smallest_enclosing_circle(&more);
        prop_assert!(after.radius >= before.radius - 1e-9);
    }

    #[test]
    fn weber_objective_is_convex_on_segments(
        pts in arb_points(3, 12),
        a in arb_point(),
        b in arb_point(),
    ) {
        // f(midpoint) <= (f(a) + f(b)) / 2.
        let mid = a.midpoint(b);
        let lhs = weber_objective(mid, &pts);
        let rhs = (weber_objective(a, &pts) + weber_objective(b, &pts)) / 2.0;
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn weiszfeld_stationarity(pts in arb_points(4, 12)) {
        // Perturbing the solution in 8 directions never improves it much.
        let tol = Tol::default();
        let w = weber_point_weiszfeld(&pts, tol);
        for k in 0..8 {
            let th = TAU * k as f64 / 8.0;
            let probe = Point::new(w.point.x + 0.01 * th.cos(), w.point.y + 0.01 * th.sin());
            prop_assert!(
                weber_objective(probe, &pts) >= w.objective - 1e-4,
                "improved by moving {th}"
            );
        }
    }

    #[test]
    fn betweenness_of_lerp(a in arb_point(), b in arb_point(), t in 0.0f64..1.0) {
        let p = a.lerp(b, t);
        prop_assert!(is_between(a, b, p, Tol::default()));
    }

    #[test]
    fn segment_intersection_is_symmetric(
        a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point(),
    ) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        let tol = Tol::default();
        prop_assert_eq!(s1.intersects(&s2, tol), s2.intersects(&s1, tol));
    }

    #[test]
    fn crossing_segments_detected(c in arb_point(), r in 0.5f64..5.0, theta in 0.0f64..TAU) {
        // Two diameters of one circle always intersect (at the centre).
        let dir1 = Vec2::from_angle(theta);
        let dir2 = Vec2::from_angle(theta + 1.0);
        let s1 = Segment::new(c + dir1 * r, c - dir1 * r);
        let s2 = Segment::new(c + dir2 * r, c - dir2 * r);
        prop_assert!(s1.intersects(&s2, Tol::default()));
    }
}
