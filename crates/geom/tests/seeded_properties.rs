//! Seeded-loop ports of the geometry property suite (hermetic-build
//! policy, DESIGN.md §8): the same universally-quantified statements as
//! `proptest_geometry.rs`, driven by the in-tree PRNG instead of the
//! external `proptest` package so they run in the default offline build.
//! Cases are drawn from a fixed seed, so failures reproduce exactly.

use gather_geom::angle::{cw_angle, normalize_tau, rotate_ccw_around, rotate_cw_around};
use gather_geom::predicates::{is_between, orient2d, Orientation};
use gather_geom::{
    convex_hull, smallest_enclosing_circle, weber_objective, weber_point_weiszfeld, Point, Segment,
    Similarity, Tol, Vec2,
};
use gather_prng::Rng;
use std::f64::consts::TAU;

const CASES: usize = 128;

/// Random point on the same centi-grid as the proptest strategy (the grid
/// keeps inputs away from knife-edge predicate boundaries).
fn point(rng: &mut Rng) -> Point {
    Point::new(
        rng.random_range(-1000i32..1000) as f64 / 50.0,
        rng.random_range(-1000i32..1000) as f64 / 50.0,
    )
}

fn points(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Point> {
    let n = rng.random_range(lo..hi + 1);
    (0..n).map(|_| point(rng)).collect()
}

fn tol() -> Tol {
    Tol::default()
}

#[test]
fn orientation_antisymmetry_and_cyclic_invariance() {
    let mut rng = Rng::seed_from_u64(0x6E01);
    for _ in 0..CASES {
        let (a, b, c) = (point(&mut rng), point(&mut rng), point(&mut rng));
        let o1 = orient2d(a, b, c);
        match o1 {
            Orientation::Collinear => assert_eq!(orient2d(b, a, c), Orientation::Collinear),
            Orientation::Clockwise => {
                assert_eq!(orient2d(b, a, c), Orientation::CounterClockwise)
            }
            Orientation::CounterClockwise => {
                assert_eq!(orient2d(b, a, c), Orientation::Clockwise)
            }
        }
        assert_eq!(o1, orient2d(b, c, a));
    }
}

#[test]
fn angles_normalise_into_tau() {
    let mut rng = Rng::seed_from_u64(0x6E02);
    for _ in 0..CASES {
        let theta = rng.random_range(-100.0f64..100.0);
        let t = normalize_tau(theta);
        assert!((0.0..TAU).contains(&t), "normalize_tau({theta}) = {t}");
        let diff = (theta - t) / TAU;
        assert!(
            (diff - diff.round()).abs() < 1e-9,
            "{t} not in the residue class of {theta}"
        );
    }
}

#[test]
fn cw_rotation_matches_cw_angle_and_inverts() {
    let mut rng = Rng::seed_from_u64(0x6E03);
    let mut checked = 0;
    while checked < CASES {
        let (p, c) = (point(&mut rng), point(&mut rng));
        let theta = rng.random_range(0.0..TAU);
        if p.dist(c) <= 0.1 {
            continue;
        }
        checked += 1;
        let r = rotate_cw_around(p, c, theta);
        assert!((c.dist(p) - c.dist(r)).abs() < 1e-9, "radius changed");
        let measured = cw_angle(p - c, r - c);
        let diff = (measured - theta).abs().min(TAU - (measured - theta).abs());
        assert!(diff < 1e-9, "theta={theta} measured={measured}");
        let back = rotate_ccw_around(r, c, theta);
        assert!(back.dist(p) < 1e-9, "rotations failed to invert");
    }
}

#[test]
fn similarity_preserves_distance_ratios_and_orientation() {
    let mut rng = Rng::seed_from_u64(0x6E04);
    let mut checked = 0;
    while checked < CASES {
        let (a, b, c) = (point(&mut rng), point(&mut rng), point(&mut rng));
        let s = Similarity::new(
            rng.random_range(0.0..TAU),
            rng.random_range(0.1f64..10.0),
            point(&mut rng),
        );
        if a.dist(b) <= 0.1 || a.dist(c) <= 0.1 {
            continue;
        }
        checked += 1;
        let ratio_before = a.dist(b) / a.dist(c);
        let ratio_after = s.apply(a).dist(s.apply(b)) / s.apply(a).dist(s.apply(c));
        assert!(
            (ratio_before - ratio_after).abs() < 1e-6 * ratio_before.max(1.0),
            "ratio {ratio_before} became {ratio_after}"
        );
        let before = orient2d(a, b, c);
        if before != Orientation::Collinear {
            assert_eq!(before, orient2d(s.apply(a), s.apply(b), s.apply(c)));
        }
    }
}

#[test]
fn hull_is_idempotent_with_input_vertices() {
    let mut rng = Rng::seed_from_u64(0x6E05);
    for _ in 0..CASES {
        let pts = points(&mut rng, 3, 20);
        let h1 = convex_hull(&pts);
        let h2 = convex_hull(&h1);
        assert_eq!(h1.len(), h2.len(), "hull of hull changed size");
        for v in &h1 {
            assert!(pts.contains(v), "hull vertex {v} is not an input point");
        }
    }
}

#[test]
fn sec_grows_monotonically() {
    let mut rng = Rng::seed_from_u64(0x6E06);
    for _ in 0..CASES {
        let pts = points(&mut rng, 2, 15);
        let extra = point(&mut rng);
        let before = smallest_enclosing_circle(&pts);
        let mut more = pts.clone();
        more.push(extra);
        let after = smallest_enclosing_circle(&more);
        assert!(
            after.radius >= before.radius - 1e-9,
            "SEC shrank from {} to {} on adding {extra}",
            before.radius,
            after.radius
        );
    }
}

#[test]
fn weber_objective_is_convex_on_segments() {
    let mut rng = Rng::seed_from_u64(0x6E07);
    for _ in 0..CASES {
        let pts = points(&mut rng, 3, 12);
        let (a, b) = (point(&mut rng), point(&mut rng));
        let mid = a.midpoint(b);
        let lhs = weber_objective(mid, &pts);
        let rhs = (weber_objective(a, &pts) + weber_objective(b, &pts)) / 2.0;
        assert!(
            lhs <= rhs + 1e-9,
            "convexity violated: f(mid)={lhs} > {rhs}"
        );
    }
}

#[test]
fn weiszfeld_stationarity() {
    let mut rng = Rng::seed_from_u64(0x6E08);
    for _ in 0..CASES {
        let pts = points(&mut rng, 4, 12);
        let w = weber_point_weiszfeld(&pts, tol());
        for k in 0..8 {
            let th = TAU * k as f64 / 8.0;
            let probe = Point::new(w.point.x + 0.01 * th.cos(), w.point.y + 0.01 * th.sin());
            assert!(
                weber_objective(probe, &pts) >= w.objective - 1e-4,
                "objective improved by probing at angle {th}"
            );
        }
    }
}

#[test]
fn betweenness_of_lerp() {
    let mut rng = Rng::seed_from_u64(0x6E09);
    for _ in 0..CASES {
        let (a, b) = (point(&mut rng), point(&mut rng));
        let t = rng.random_range(0.0f64..1.0);
        assert!(is_between(a, b, a.lerp(b, t), tol()));
    }
}

#[test]
fn segment_intersection_is_symmetric_and_detects_crossings() {
    let mut rng = Rng::seed_from_u64(0x6E0A);
    for _ in 0..CASES {
        let s1 = Segment::new(point(&mut rng), point(&mut rng));
        let s2 = Segment::new(point(&mut rng), point(&mut rng));
        assert_eq!(s1.intersects(&s2, tol()), s2.intersects(&s1, tol()));
        // Two diameters of one circle always intersect (at the centre).
        let c = point(&mut rng);
        let r = rng.random_range(0.5f64..5.0);
        let theta = rng.random_range(0.0..TAU);
        let dir1 = Vec2::from_angle(theta);
        let dir2 = Vec2::from_angle(theta + 1.0);
        let d1 = Segment::new(c + dir1 * r, c - dir1 * r);
        let d2 = Segment::new(c + dir2 * r, c - dir2 * r);
        assert!(d1.intersects(&d2, tol()), "diameters failed to intersect");
    }
}
