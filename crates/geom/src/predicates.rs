//! Orientation and incidence predicates with a floating-point error filter.
//!
//! The classification machinery of the paper (collinearity of the whole
//! configuration, points lying on a half-line, betweenness on a segment)
//! bottoms out in the classic `orient2d` determinant. We evaluate it in
//! `f64` with a forward error bound in the style of Shewchuk's static
//! filter: when the determinant's magnitude exceeds the bound the sign is
//! certain; below the bound we declare the points collinear. For the
//! coordinate magnitudes produced by the workload generators this matches
//! the exact predicate on all non-adversarial inputs, and errs toward
//! "collinear" on the knife-edge — which is the conservative direction for
//! the algorithm (a configuration misread as linear is handled by the `L`
//! branches, which are safe for non-linear configurations too only briefly;
//! the tolerance is set so generators never produce knife-edge inputs).

use crate::point::Point;
use crate::tol::Tol;

/// Result of an orientation test on an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The triple makes a left (counter-clockwise) turn.
    CounterClockwise,
    /// The triple makes a right (clockwise) turn.
    Clockwise,
    /// The triple is collinear (within the error filter).
    Collinear,
}

/// Relative error bound for the `orient2d` determinant computed with f64.
/// `(3 + 16ε)ε` from Shewchuk's analysis, rounded up.
const ORIENT2D_REL_BOUND: f64 = 3.3306690738754716e-16;

/// Signed area of the parallelogram `(b - a) × (c - a)`.
///
/// Positive when `a → b → c` turns counter-clockwise.
#[inline]
pub fn orient2d_raw(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Filtered orientation of the triple `a → b → c`.
///
/// Uses a static forward error bound: the sign of the determinant is
/// trusted only when its magnitude exceeds the bound; otherwise the triple
/// is reported [`Orientation::Collinear`].
///
/// # Example
///
/// ```
/// use gather_geom::{orient2d, Orientation, Point};
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(1.0, 0.0);
/// assert_eq!(orient2d(a, b, Point::new(0.0, 1.0)), Orientation::CounterClockwise);
/// assert_eq!(orient2d(a, b, Point::new(0.0, -1.0)), Orientation::Clockwise);
/// assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
/// ```
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let det = orient2d_raw(a, b, c);
    // Magnitude bound on the rounding error of the determinant.
    let detsum = ((b.x - a.x) * (c.y - a.y)).abs() + ((b.y - a.y) * (c.x - a.x)).abs();
    let err = ORIENT2D_REL_BOUND * detsum;
    if det > err {
        Orientation::CounterClockwise
    } else if det < -err {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Fully robust orientation: the fast filtered test, falling back to the
/// exact expansion-arithmetic sign ([`crate::exact::orient2d_exact_sign`])
/// whenever the filter is uncertain. Collinear answers are exact.
pub fn orient2d_robust(a: Point, b: Point, c: Point) -> Orientation {
    let det = orient2d_raw(a, b, c);
    let detsum = ((b.x - a.x) * (c.y - a.y)).abs() + ((b.y - a.y) * (c.x - a.x)).abs();
    let err = ORIENT2D_REL_BOUND * detsum;
    if det > err {
        return Orientation::CounterClockwise;
    }
    if det < -err {
        return Orientation::Clockwise;
    }
    match crate::exact::orient2d_exact_sign(a, b, c) {
        std::cmp::Ordering::Greater => Orientation::CounterClockwise,
        std::cmp::Ordering::Less => Orientation::Clockwise,
        std::cmp::Ordering::Equal => Orientation::Collinear,
    }
}

/// Orientation with a user tolerance: triples whose normalised determinant
/// is within `tol` of zero are collinear. The determinant is normalised by
/// the product of the two edge lengths, making the test scale-invariant
/// (it compares the sine of the turn angle against the tolerance).
pub fn orient2d_tol(a: Point, b: Point, c: Point, tol: Tol) -> Orientation {
    let det = orient2d_raw(a, b, c);
    let scale = a.dist(b) * a.dist(c);
    if scale == 0.0 {
        return Orientation::Collinear;
    }
    let sine = det / scale;
    if tol.is_zero(sine) {
        Orientation::Collinear
    } else if sine > 0.0 {
        Orientation::CounterClockwise
    } else {
        Orientation::Clockwise
    }
}

/// Are all points collinear (lying on one common line)?
///
/// Degenerate inputs (0, 1 or 2 points, or all points coincident) count as
/// collinear, matching the paper's definition of a *linear* configuration.
///
/// # Example
///
/// ```
/// use gather_geom::{are_collinear, Point, Tol};
/// let tol = Tol::default();
/// let on_line = [Point::new(0.0, 0.0), Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
/// assert!(are_collinear(&on_line, tol));
/// let triangle = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
/// assert!(!are_collinear(&triangle, tol));
/// ```
pub fn are_collinear(points: &[Point], tol: Tol) -> bool {
    // Pick the two mutually farthest of (first point, farthest from it) as
    // the line's anchor; this is numerically the most stable choice.
    let Some(&first) = points.first() else {
        return true;
    };
    let Some(&anchor) = points
        .iter()
        .max_by(|p, q| first.dist2(**p).total_cmp(&first.dist2(**q)))
    else {
        return true;
    };
    if first.dist(anchor) <= tol.abs {
        return true; // all points coincide (within tolerance)
    }
    points
        .iter()
        .all(|&p| orient2d_tol(first, anchor, p, tol) == Orientation::Collinear)
}

/// Is `p` on the closed segment `[a, b]` (within tolerance)?
pub fn is_between(a: Point, b: Point, p: Point, tol: Tol) -> bool {
    if orient2d_tol(a, b, p, tol) != Orientation::Collinear {
        return false;
    }
    let ab = b - a;
    let t = (p - a).dot(ab);
    let len2 = ab.norm2();
    if len2 == 0.0 {
        return a.approx_eq(p, tol);
    }
    tol.ge(t, 0.0) && tol.le(t, len2)
}

/// Is `p` strictly inside the open segment `(a, b)` — collinear with and
/// between the endpoints, but distinct from both (beyond `tol.snap`)?
///
/// This is the "is there a robot between `r` and the destination" test of
/// the `M` branch of WAIT-FREE-GATHER.
pub fn is_strictly_between(a: Point, b: Point, p: Point, tol: Tol) -> bool {
    if p.within(a, tol.snap) || p.within(b, tol.snap) {
        return false;
    }
    is_between(a, b, p, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn orientation_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert_eq!(
            orient2d(a, b, Point::new(1.0, 3.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(a, b, Point::new(1.0, -3.0)),
            Orientation::Clockwise
        );
        assert_eq!(orient2d(a, b, Point::new(7.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let a = Point::new(0.3, 1.7);
        let b = Point::new(-2.0, 0.4);
        let c = Point::new(1.5, -0.9);
        let o1 = orient2d(a, b, c);
        let o2 = orient2d(b, a, c);
        assert_ne!(o1, Orientation::Collinear);
        assert_ne!(o1, o2);
    }

    #[test]
    fn filter_handles_tiny_perturbations() {
        // Points on a line with a perturbation below f64 resolution at this
        // magnitude must read collinear.
        let a = Point::new(1e8, 1e8);
        let b = Point::new(2e8, 2e8);
        let c = Point::new(3e8, 3e8 + 1e-9);
        assert_eq!(orient2d(a, b, c), Orientation::Collinear);
    }

    #[test]
    fn robust_orientation_resolves_the_filter_band() {
        let a = Point::new(1e8, 1e8);
        let b = Point::new(2e8, 2e8);
        let up = Point::new(3e8, (3e8_f64).next_up());
        assert_eq!(orient2d(a, b, up), Orientation::Collinear); // filter unsure
        assert_eq!(orient2d_robust(a, b, up), Orientation::CounterClockwise);
        assert_eq!(
            orient2d_robust(a, b, Point::new(3e8, 3e8)),
            Orientation::Collinear
        );
    }

    #[test]
    fn robust_matches_filter_on_clear_inputs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 1.0);
        let c = Point::new(-1.0, 3.0);
        assert_eq!(orient2d(a, b, c), orient2d_robust(a, b, c));
    }

    #[test]
    fn tolerant_orientation_is_scale_invariant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.5, 1e-12);
        assert_eq!(orient2d_tol(a, b, c, t()), Orientation::Collinear);
        // Same shape, billion times larger.
        let s = 1e9;
        let c2 = Point::new(0.5 * s, 1e-12 * s);
        assert_eq!(
            orient2d_tol(a, Point::new(s, 0.0), c2, t()),
            Orientation::Collinear
        );
        // A genuine turn is detected at any scale.
        let d = Point::new(0.5 * s, 0.3 * s);
        assert_eq!(
            orient2d_tol(a, Point::new(s, 0.0), d, t()),
            Orientation::CounterClockwise
        );
    }

    #[test]
    fn collinearity_of_sets() {
        let line: Vec<Point> = (0..10)
            .map(|i| Point::new(i as f64, 2.0 * i as f64))
            .collect();
        assert!(are_collinear(&line, t()));
        let mut bent = line.clone();
        bent.push(Point::new(1.0, 5.0));
        assert!(!are_collinear(&bent, t()));
    }

    #[test]
    fn collinearity_degenerate_inputs() {
        assert!(are_collinear(&[], t()));
        assert!(are_collinear(&[Point::new(1.0, 1.0)], t()));
        assert!(are_collinear(
            &[Point::new(1.0, 1.0), Point::new(2.0, 5.0)],
            t()
        ));
        let same = [Point::new(3.0, 3.0); 5];
        assert!(are_collinear(&same, t()));
    }

    #[test]
    fn collinearity_robust_to_unsorted_input() {
        // The anchor selection must not assume sorted input.
        let pts = [
            Point::new(5.0, 5.0),
            Point::new(-3.0, -3.0),
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
        ];
        assert!(are_collinear(&pts, t()));
    }

    #[test]
    fn betweenness() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 4.0);
        assert!(is_between(a, b, Point::new(2.0, 2.0), t()));
        assert!(is_between(a, b, a, t())); // closed interval includes ends
        assert!(is_between(a, b, b, t()));
        assert!(!is_between(a, b, Point::new(5.0, 5.0), t())); // beyond b
        assert!(!is_between(a, b, Point::new(-1.0, -1.0), t())); // before a
        assert!(!is_between(a, b, Point::new(2.0, 2.5), t())); // off line
    }

    #[test]
    fn strict_betweenness_excludes_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        assert!(is_strictly_between(a, b, Point::new(2.0, 0.0), t()));
        assert!(!is_strictly_between(a, b, a, t()));
        assert!(!is_strictly_between(a, b, b, t()));
        // Within snap distance of an endpoint counts as the endpoint.
        assert!(!is_strictly_between(a, b, Point::new(4.0 - 1e-9, 0.0), t()));
    }

    #[test]
    fn betweenness_degenerate_segment() {
        let a = Point::new(1.0, 1.0);
        assert!(is_between(a, a, a, t()));
        assert!(!is_between(a, a, Point::new(2.0, 1.0), t()));
    }
}
