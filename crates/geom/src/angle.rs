//! Clockwise angles and chirality.
//!
//! The robots of the paper share *chirality*: a common notion of the
//! clockwise direction. All angular bookkeeping in the reproduction is
//! therefore expressed as **clockwise** angles in `[0, 2π)`; the paper's
//! `∠(u, c, v)` ("the angle in the clockwise direction between segments
//! `[c,u]` and `[c,v]`") is [`cw_angle_at`].

use crate::point::{Point, Vec2};
use std::f64::consts::TAU;

/// An angle in radians normalised to `[0, 2π)`.
///
/// The newtype documents (and enforces, via [`Angle::new`]) the
/// normalisation convention used throughout the suite.
///
/// # Example
///
/// ```
/// use gather_geom::Angle;
/// use std::f64::consts::TAU;
/// assert_eq!(Angle::new(-0.5).radians(), TAU - 0.5);
/// assert_eq!(Angle::new(TAU + 1.0).radians(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Angle(f64);

impl Angle {
    /// A full turn, `2π`.
    pub const FULL_TURN: f64 = TAU;

    /// Creates an angle, normalising the input into `[0, 2π)`.
    #[inline]
    pub fn new(radians: f64) -> Self {
        Angle(normalize_tau(radians))
    }

    /// The normalised value in radians, in `[0, 2π)`.
    #[inline]
    pub fn radians(self) -> f64 {
        self.0
    }

    /// Sum of two angles, renormalised.
    #[inline]
    pub fn plus(self, other: Angle) -> Angle {
        Angle::new(self.0 + other.0)
    }
}

impl std::fmt::Display for Angle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}rad", self.0)
    }
}

/// Normalises an angle into `[0, 2π)`.
#[inline]
pub fn normalize_tau(theta: f64) -> f64 {
    let mut t = theta % TAU;
    if t < 0.0 {
        t += TAU;
    }
    // The addition above can round back up to exactly TAU.
    if t >= TAU {
        t = 0.0;
    }
    t
}

/// Counter-clockwise polar angle of point `p` as seen from `origin`,
/// in `(-π, π]`.
///
/// # Panics
///
/// Panics if `p == origin` (the direction is undefined).
#[inline]
pub fn polar_angle(origin: Point, p: Point) -> f64 {
    let v = p - origin;
    assert!(
        v.norm2() > 0.0,
        "polar angle undefined for coincident points"
    );
    v.angle()
}

/// Clockwise angle from direction `from` to direction `to`, in `[0, 2π)`.
///
/// "Clockwise" decreases the counter-clockwise angle, so this is
/// `(angle(from) - angle(to)) mod 2π`.
#[inline]
pub fn cw_angle(from: Vec2, to: Vec2) -> f64 {
    normalize_tau(from.angle() - to.angle())
}

/// Counter-clockwise angle from direction `from` to direction `to`,
/// in `[0, 2π)`.
#[inline]
pub fn ccw_angle(from: Vec2, to: Vec2) -> f64 {
    normalize_tau(to.angle() - from.angle())
}

/// The paper's `∠(u, c, v)`: the clockwise angle at apex `c` from the ray
/// toward `u` to the ray toward `v`, in `[0, 2π)`.
///
/// # Panics
///
/// Panics if `u == c` or `v == c`.
///
/// # Example
///
/// ```
/// use gather_geom::{angle::cw_angle_at, Point};
/// use std::f64::consts::FRAC_PI_2;
/// let c = Point::ORIGIN;
/// let u = Point::new(0.0, 1.0); // up
/// let v = Point::new(1.0, 0.0); // right: a quarter turn clockwise from up
/// assert!((cw_angle_at(u, c, v) - FRAC_PI_2).abs() < 1e-12);
/// ```
#[inline]
pub fn cw_angle_at(u: Point, c: Point, v: Point) -> f64 {
    assert!(u != c && v != c, "angle apex coincides with an endpoint");
    cw_angle(u - c, v - c)
}

/// Rotates point `p` around `center` by `theta` radians **clockwise**.
///
/// Used by the side-step moves of WAIT-FREE-GATHER (classes `M` and `L2W`),
/// which rotate destinations clockwise thanks to chirality.
#[inline]
pub fn rotate_cw_around(p: Point, center: Point, theta: f64) -> Point {
    let v = (p - center).rotated(-theta);
    center + v
}

/// Rotates point `p` around `center` by `theta` radians counter-clockwise.
#[inline]
pub fn rotate_ccw_around(p: Point, center: Point, theta: f64) -> Point {
    let v = (p - center).rotated(theta);
    center + v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn normalisation_into_tau_range() {
        assert_eq!(normalize_tau(0.0), 0.0);
        assert_eq!(normalize_tau(TAU), 0.0);
        assert_eq!(normalize_tau(-FRAC_PI_2), 3.0 * FRAC_PI_2);
        assert!((normalize_tau(3.0 * TAU + 1.0) - 1.0).abs() < 1e-12);
        // A value that rounds back to TAU must still land in [0, TAU).
        let just_below_zero = -f64::EPSILON / 4.0;
        let n = normalize_tau(just_below_zero);
        assert!((0.0..TAU).contains(&n));
    }

    #[test]
    fn angle_newtype_normalises() {
        assert_eq!(Angle::new(TAU + 0.25).radians(), 0.25);
        assert_eq!(Angle::new(-0.25).radians(), TAU - 0.25);
        let a = Angle::new(3.0 * FRAC_PI_2);
        let b = Angle::new(FRAC_PI_2 + 0.0);
        assert!((a.plus(b).radians() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn clockwise_quarter_turn() {
        let up = Vec2::new(0.0, 1.0);
        let right = Vec2::new(1.0, 0.0);
        assert!((cw_angle(up, right) - FRAC_PI_2).abs() < 1e-12);
        assert!((cw_angle(right, up) - 3.0 * FRAC_PI_2).abs() < 1e-12);
        assert!((ccw_angle(right, up) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn cw_plus_ccw_is_full_turn_or_both_zero() {
        let a = Vec2::from_angle(0.3);
        let b = Vec2::from_angle(2.1);
        let cw = cw_angle(a, b);
        let ccw = ccw_angle(a, b);
        assert!((cw + ccw - TAU).abs() < 1e-12);
        assert_eq!(cw_angle(a, a), 0.0);
        assert_eq!(ccw_angle(a, a), 0.0);
    }

    #[test]
    fn paper_angle_notation() {
        let c = Point::new(1.0, 1.0);
        let u = Point::new(1.0, 2.0);
        let v = Point::new(2.0, 1.0);
        assert!((cw_angle_at(u, c, v) - FRAC_PI_2).abs() < 1e-12);
        assert!((cw_angle_at(v, c, u) - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn rotate_cw_moves_up_to_right() {
        let c = Point::ORIGIN;
        let p = Point::new(0.0, 1.0);
        let r = rotate_cw_around(p, c, FRAC_PI_2);
        assert!((r.x - 1.0).abs() < 1e-12);
        assert!(r.y.abs() < 1e-12);
    }

    #[test]
    fn rotations_are_inverses() {
        let c = Point::new(2.0, -1.0);
        let p = Point::new(5.0, 3.0);
        let r = rotate_ccw_around(rotate_cw_around(p, c, FRAC_PI_4), c, FRAC_PI_4);
        assert!(p.dist(r) < 1e-12);
    }

    #[test]
    fn rotation_preserves_radius() {
        let c = Point::new(1.0, 1.0);
        let p = Point::new(4.0, 5.0);
        let r = rotate_cw_around(p, c, 1.234);
        assert!((c.dist(p) - c.dist(r)).abs() < 1e-12);
    }

    #[test]
    fn polar_angle_matches_vector_angle() {
        let o = Point::new(1.0, 1.0);
        let p = Point::new(2.0, 2.0);
        assert!((polar_angle(o, p) - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "coincident")]
    fn polar_angle_of_same_point_panics() {
        let o = Point::new(1.0, 1.0);
        let _ = polar_angle(o, o);
    }

    #[test]
    #[should_panic(expected = "apex")]
    fn angle_at_apex_panics_on_degenerate_input() {
        let c = Point::ORIGIN;
        let _ = cw_angle_at(c, c, Point::new(1.0, 0.0));
    }
}
