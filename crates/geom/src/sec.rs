//! Smallest enclosing circles — the paper's `sec(C)`.
//!
//! The *view* of a robot position (Definition 2) is anchored on the centre
//! of the smallest enclosing circle of the distinct positions, so `sec` is
//! on the hot path of symmetry detection. Implemented with Welzl's
//! algorithm, made iterative-in-expectation by a deterministic shuffle
//! (the suite forbids ambient randomness; a fixed LCG permutation gives the
//! same expected O(n) behaviour reproducibly).

use crate::point::Point;
use crate::soa::PointBuffer;
use crate::tol::Tol;

/// A circle on the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Circle {
    /// Centre of the circle (`center(G)` in the paper).
    pub center: Point,
    /// Radius of the circle.
    pub radius: f64,
}

impl std::fmt::Display for Circle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Circle(center={}, r={:.6})", self.center, self.radius)
    }
}

impl Circle {
    /// Creates a circle from centre and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius < 0`.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "negative circle radius");
        Circle { center, radius }
    }

    /// Is `p` inside or on the circle (with tolerance slack on the radius)?
    pub fn contains(&self, p: Point, tol: Tol) -> bool {
        let slack = tol.abs + tol.rel * self.radius.max(1.0);
        self.center.dist(p) <= self.radius + slack
    }

    /// Is `p` on the circle boundary (within tolerance)?
    pub fn on_boundary(&self, p: Point, tol: Tol) -> bool {
        tol.eq(self.center.dist(p), self.radius)
    }
}

/// Circle through two points (as diameter).
fn circle_from_2(a: Point, b: Point) -> Circle {
    let c = a.midpoint(b);
    Circle::new(c, c.dist(a).max(c.dist(b)))
}

/// Circumcircle of three points; `None` if they are (numerically) collinear.
fn circle_from_3(a: Point, b: Point, c: Point) -> Option<Circle> {
    let bx = b.x - a.x;
    let by = b.y - a.y;
    let cx = c.x - a.x;
    let cy = c.y - a.y;
    let d = 2.0 * (bx * cy - by * cx);
    if d.abs() < 1e-12 * (bx.abs() + by.abs() + cx.abs() + cy.abs()).max(1e-300) {
        return None;
    }
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    let ux = (cy * b2 - by * c2) / d;
    let uy = (bx * c2 - cx * b2) / d;
    let center = Point::new(a.x + ux, a.y + uy);
    let r = center.dist(a).max(center.dist(b)).max(center.dist(c));
    Some(Circle::new(center, r))
}

/// Smallest circle with the points of `boundary` on its boundary
/// (|boundary| <= 3).
fn trivial(boundary: &[Point]) -> Circle {
    match boundary {
        [] => Circle::new(Point::ORIGIN, 0.0),
        [a] => Circle::new(*a, 0.0),
        [a, b] => circle_from_2(*a, *b),
        [a, b, c] => circle_from_3(*a, *b, *c).unwrap_or_else(|| {
            // Collinear support: the diameter circle of the farthest pair.
            let ab = circle_from_2(*a, *b);
            let ac = circle_from_2(*a, *c);
            let bc = circle_from_2(*b, *c);
            let mut best = ab;
            for cand in [ac, bc] {
                if cand.radius > best.radius {
                    best = cand;
                }
            }
            best
        }),
        _ => unreachable!("support set larger than 3"),
    }
}

/// Slack used when testing containment inside Welzl's recursion.
const WELZL_EPS: f64 = 1e-10;

/// The ≤ 3-point support set of Welzl's recursion, on the stack instead of
/// a heap-allocated `Vec`.
struct Boundary<'a> {
    buf: &'a mut [Point; 3],
    len: usize,
}

impl<'a> Boundary<'a> {
    fn new(buf: &'a mut [Point; 3]) -> Self {
        Boundary { buf, len: 0 }
    }

    fn push(&mut self, p: Point) {
        self.buf[self.len] = p;
        self.len += 1;
    }

    fn pop(&mut self) {
        self.len -= 1;
    }

    fn as_slice(&self) -> &[Point] {
        &self.buf[..self.len]
    }
}

fn welzl(pts: &mut [Point], boundary: &mut Boundary<'_>) -> Circle {
    if pts.is_empty() || boundary.len == 3 {
        return trivial(boundary.as_slice());
    }
    let p = pts[pts.len() - 1];
    let n = pts.len() - 1;
    let d = welzl(&mut pts[..n], boundary);
    if d.center.dist(p) <= d.radius * (1.0 + WELZL_EPS) + WELZL_EPS {
        return d;
    }
    boundary.push(p);
    let r = welzl(&mut pts[..n], boundary);
    boundary.pop();
    r
}

/// Smallest enclosing circle of a point set (the paper's `sec(C)`,
/// conventionally applied to the de-duplicated positions `U(C)`).
///
/// Returns a zero circle at the origin for an empty input and a zero-radius
/// circle at the point for a single-point input.
///
/// # Example
///
/// ```
/// use gather_geom::{smallest_enclosing_circle, Point};
/// let c = smallest_enclosing_circle(&[
///     Point::new(-1.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 0.5),
/// ]);
/// assert!(c.center.dist(Point::ORIGIN) < 1e-9);
/// assert!((c.radius - 1.0).abs() < 1e-9);
/// ```
pub fn smallest_enclosing_circle(points: &[Point]) -> Circle {
    SEC_SCRATCH.with(|c| {
        let mut pts = std::mem::take(&mut *c.borrow_mut());
        pts.clear();
        pts.extend_from_slice(points);
        let circle = sec_in_place(&mut pts);
        *c.borrow_mut() = pts;
        circle
    })
}

/// [`smallest_enclosing_circle`] of the points of a [`PointBuffer`]: the
/// SoA mirror of a configuration feeds Welzl directly, without materialising
/// an array-of-structs copy per call. Algorithmically identical to the
/// slice entry point (same dedup, same deterministic shuffle, same
/// recursion), so the two agree bitwise on identical point sequences.
pub fn smallest_enclosing_circle_soa(buf: &PointBuffer) -> Circle {
    SEC_SCRATCH.with(|c| {
        let mut pts = std::mem::take(&mut *c.borrow_mut());
        buf.gather_into(&mut pts);
        let circle = sec_in_place(&mut pts);
        *c.borrow_mut() = pts;
        circle
    })
}

thread_local! {
    /// Reusable working copy of the input for the Welzl entry points: the
    /// simulator calls `sec` every round, so the copy must not allocate in
    /// the steady state.
    static SEC_SCRATCH: std::cell::RefCell<Vec<Point>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Shared core of the two public entry points: dedups and deterministically
/// shuffles the working copy, then runs Welzl's recursion over it.
fn sec_in_place(pts: &mut Vec<Point>) -> Circle {
    pts.dedup_by(|a, b| a == b);
    // Deterministic shuffle (LCG) for expected-linear Welzl behaviour.
    let mut state: u64 = 0x9E3779B97F4A7C15;
    for i in (1..pts.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        pts.swap(i, j);
    }
    let n = pts.len();
    let mut boundary = [Point::ORIGIN; 3];
    welzl(&mut pts[..n], &mut Boundary::new(&mut boundary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tol() -> Tol {
        Tol::default()
    }

    fn assert_encloses(c: Circle, pts: &[Point]) {
        for p in pts {
            assert!(
                c.contains(*p, tol()),
                "{p} outside {c} by {}",
                c.center.dist(*p) - c.radius
            );
        }
    }

    #[test]
    fn empty_and_singleton() {
        let e = smallest_enclosing_circle(&[]);
        assert_eq!(e.radius, 0.0);
        let p = Point::new(3.0, 4.0);
        let s = smallest_enclosing_circle(&[p]);
        assert_eq!(s.center, p);
        assert_eq!(s.radius, 0.0);
    }

    #[test]
    fn two_points_diameter() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let c = smallest_enclosing_circle(&[a, b]);
        assert!(c.center.dist(Point::new(2.0, 0.0)) < 1e-12);
        assert!((c.radius - 2.0).abs() < 1e-12);
    }

    #[test]
    fn equilateral_triangle_circumcircle() {
        let r = 5.0;
        let pts: Vec<Point> = (0..3)
            .map(|k| {
                let th = TAU * k as f64 / 3.0;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect();
        let c = smallest_enclosing_circle(&pts);
        assert!(c.center.dist(Point::ORIGIN) < 1e-9);
        assert!((c.radius - r).abs() < 1e-9);
        assert_encloses(c, &pts);
    }

    #[test]
    fn obtuse_triangle_uses_diameter_of_longest_side() {
        // Very obtuse triangle: SEC is the diameter circle of the long side.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let c = Point::new(5.0, 0.1);
        let circ = smallest_enclosing_circle(&[a, b, c]);
        assert!(circ.center.dist(Point::new(5.0, 0.0)) < 1e-9);
        assert!((circ.radius - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regular_polygon_centered() {
        for n in [4usize, 5, 7, 12, 64] {
            let pts: Vec<Point> = (0..n)
                .map(|k| {
                    let th = TAU * k as f64 / n as f64 + 0.37;
                    Point::new(2.0 + 3.0 * th.cos(), -1.0 + 3.0 * th.sin())
                })
                .collect();
            let c = smallest_enclosing_circle(&pts);
            assert!(c.center.dist(Point::new(2.0, -1.0)) < 1e-9, "n={n}");
            assert!((c.radius - 3.0).abs() < 1e-9, "n={n}");
            assert_encloses(c, &pts);
        }
    }

    #[test]
    fn interior_points_do_not_change_sec() {
        let mut pts = vec![
            Point::new(-2.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(0.0, -2.0),
        ];
        let base = smallest_enclosing_circle(&pts);
        pts.push(Point::new(0.3, 0.1));
        pts.push(Point::new(-0.5, 0.9));
        let with_interior = smallest_enclosing_circle(&pts);
        assert!(base.center.dist(with_interior.center) < 1e-9);
        assert!((base.radius - with_interior.radius).abs() < 1e-9);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..9)
            .map(|i| Point::new(i as f64, 2.0 * i as f64))
            .collect();
        let c = smallest_enclosing_circle(&pts);
        let expect_center = Point::new(4.0, 8.0);
        assert!(c.center.dist(expect_center) < 1e-9);
        assert_encloses(c, &pts);
    }

    #[test]
    fn duplicate_points_are_harmless() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let c = smallest_enclosing_circle(&pts);
        assert!((c.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sec_is_minimal_against_shrinking() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 4.0),
            Point::new(-2.0, 2.0),
        ];
        let c = smallest_enclosing_circle(&pts);
        // Any circle with a slightly smaller radius centred anywhere near
        // the SEC centre must miss at least one point.
        let shrunk = Circle::new(c.center, c.radius * 0.999);
        let missed = pts.iter().any(|p| !shrunk.contains(*p, Tol::strict()));
        assert!(missed, "SEC was not minimal");
    }

    #[test]
    fn boundary_predicate() {
        let c = Circle::new(Point::ORIGIN, 2.0);
        assert!(c.on_boundary(Point::new(2.0, 0.0), tol()));
        assert!(!c.on_boundary(Point::new(1.0, 0.0), tol()));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_radius_panics() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn soa_entry_point_matches_slice_path_bitwise() {
        let pts: Vec<Point> = (0..20)
            .map(|k| {
                let th = TAU * k as f64 / 20.0;
                Point::new((1.5 + 0.1 * k as f64) * th.cos(), 2.0 * th.sin())
            })
            .collect();
        let buf = PointBuffer::from_points(&pts);
        assert_eq!(
            smallest_enclosing_circle_soa(&buf),
            smallest_enclosing_circle(&pts)
        );
        assert_eq!(
            smallest_enclosing_circle_soa(&PointBuffer::new()),
            smallest_enclosing_circle(&[])
        );
    }
}
