//! Orientation-preserving similarity transforms.
//!
//! The robots of the paper are *disoriented*: each observes the world in its
//! own coordinate system with its own origin (itself), rotation, and unit
//! distance. They do share **chirality**, so the transforms relating their
//! frames never include a reflection. [`Similarity`] is exactly this class:
//! `x ↦ s·R(θ)·x + t` with scale `s > 0` and a proper rotation `R(θ)`.
//!
//! The simulator uses a `Similarity` per robot per activation to produce the
//! robot's local snapshot and to map the computed destination back to global
//! coordinates. Any gathering algorithm valid in the paper's model must be
//! *equivariant* under these transforms — a property the test suite checks
//! explicitly.

use crate::point::{Point, Vec2};

/// An orientation-preserving similarity transform of the plane:
/// rotation by `theta`, uniform scaling by `scale > 0`, then translation.
///
/// # Example
///
/// ```
/// use gather_geom::{Point, Similarity};
/// use std::f64::consts::FRAC_PI_2;
/// let t = Similarity::new(FRAC_PI_2, 2.0, Point::new(1.0, 0.0));
/// let p = t.apply(Point::new(1.0, 0.0)); // rotate 90° CCW, double, shift
/// assert!(p.dist(Point::new(1.0, 2.0)) < 1e-12);
/// let back = t.inverse().apply(p);
/// assert!(back.dist(Point::new(1.0, 0.0)) < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Similarity {
    cos: f64,
    sin: f64,
    scale: f64,
    translation: Vec2,
}

impl Default for Similarity {
    fn default() -> Self {
        Similarity::identity()
    }
}

impl Similarity {
    /// The identity transform.
    pub fn identity() -> Self {
        Similarity {
            cos: 1.0,
            sin: 0.0,
            scale: 1.0,
            translation: Vec2::ZERO,
        }
    }

    /// Creates a transform: rotate by `theta` (counter-clockwise), scale by
    /// `scale`, then translate so the old origin lands on `origin_image`.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` (a non-positive scale would be a reflection or
    /// a collapse, both outside the model).
    pub fn new(theta: f64, scale: f64, origin_image: Point) -> Self {
        assert!(scale > 0.0, "similarity scale must be positive");
        Similarity {
            cos: theta.cos(),
            sin: theta.sin(),
            scale,
            translation: origin_image.to_vec(),
        }
    }

    /// Pure translation.
    pub fn translation(offset: Vec2) -> Self {
        Similarity {
            cos: 1.0,
            sin: 0.0,
            scale: 1.0,
            translation: offset,
        }
    }

    /// The similarity mapping global coordinates into the local frame of an
    /// observer at `observer_pos` whose frame is rotated by `theta` and
    /// whose unit distance is `unit` (global units per local unit):
    /// the observer sees itself at the origin.
    ///
    /// # Panics
    ///
    /// Panics if `unit <= 0`.
    pub fn into_local_frame(observer_pos: Point, theta: f64, unit: f64) -> Self {
        assert!(unit > 0.0, "frame unit must be positive");
        // local = R(-theta)/unit * (global - observer)
        let s = 1.0 / unit;
        let (sin, cos) = (-theta).sin_cos();
        let off = Vec2::new(
            -(cos * observer_pos.x - sin * observer_pos.y) * s,
            -(sin * observer_pos.x + cos * observer_pos.y) * s,
        );
        Similarity {
            cos,
            sin,
            scale: s,
            translation: off,
        }
    }

    /// Scale factor of the transform.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn apply(&self, p: Point) -> Point {
        let x = self.scale * (self.cos * p.x - self.sin * p.y) + self.translation.x;
        let y = self.scale * (self.sin * p.x + self.cos * p.y) + self.translation.y;
        Point::new(x, y)
    }

    /// Applies the transform to a direction vector (rotation and scale only;
    /// translation does not act on vectors).
    #[inline]
    pub fn apply_vec(&self, v: Vec2) -> Vec2 {
        Vec2::new(
            self.scale * (self.cos * v.x - self.sin * v.y),
            self.scale * (self.sin * v.x + self.cos * v.y),
        )
    }

    /// Applies the transform to every point of a slice.
    pub fn apply_all(&self, points: &[Point]) -> Vec<Point> {
        points.iter().map(|p| self.apply(*p)).collect()
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Similarity {
        // y = sR x + t  =>  x = (1/s) R^T (y - t)
        let inv_scale = 1.0 / self.scale;
        let t = self.translation;
        let inv_t = Vec2::new(
            -inv_scale * (self.cos * t.x + self.sin * t.y),
            -inv_scale * (-self.sin * t.x + self.cos * t.y),
        );
        Similarity {
            cos: self.cos,
            sin: -self.sin,
            scale: inv_scale,
            translation: inv_t,
        }
    }

    /// Composition: `self.then(&g)` applies `self` first, then `g`.
    pub fn then(&self, g: &Similarity) -> Similarity {
        // g(f(x)) = s_g R_g (s_f R_f x + t_f) + t_g
        let cos = g.cos * self.cos - g.sin * self.sin;
        let sin = g.sin * self.cos + g.cos * self.sin;
        let scale = g.scale * self.scale;
        let t = Vec2::new(
            g.scale * (g.cos * self.translation.x - g.sin * self.translation.y) + g.translation.x,
            g.scale * (g.sin * self.translation.x + g.cos * self.translation.y) + g.translation.y,
        );
        Similarity {
            cos,
            sin,
            scale,
            translation: t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_3};

    #[test]
    fn identity_is_a_no_op() {
        let id = Similarity::identity();
        let p = Point::new(3.0, -2.0);
        assert_eq!(id.apply(p), p);
        assert_eq!(id.apply_vec(Vec2::new(1.0, 2.0)), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn rotation_scale_translation_order() {
        let t = Similarity::new(FRAC_PI_2, 3.0, Point::new(10.0, 0.0));
        // (1,0) -> rotate -> (0,1) -> scale -> (0,3) -> translate -> (10,3)
        let p = t.apply(Point::new(1.0, 0.0));
        assert!(p.dist(Point::new(10.0, 3.0)) < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        let t = Similarity::new(1.234, 0.7, Point::new(-4.0, 9.0));
        let inv = t.inverse();
        for p in [
            Point::new(0.0, 0.0),
            Point::new(5.0, -3.0),
            Point::new(-1.5, 2.5),
        ] {
            assert!(inv.apply(t.apply(p)).dist(p) < 1e-12);
            assert!(t.apply(inv.apply(p)).dist(p) < 1e-12);
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let f = Similarity::new(0.4, 2.0, Point::new(1.0, 1.0));
        let g = Similarity::new(-1.1, 0.5, Point::new(-3.0, 2.0));
        let fg = f.then(&g);
        let p = Point::new(2.0, -7.0);
        assert!(fg.apply(p).dist(g.apply(f.apply(p))) < 1e-12);
    }

    #[test]
    fn local_frame_puts_observer_at_origin() {
        let obs = Point::new(5.0, -2.0);
        let t = Similarity::into_local_frame(obs, FRAC_PI_3, 2.5);
        assert!(t.apply(obs).dist(Point::ORIGIN) < 1e-12);
    }

    #[test]
    fn local_frame_preserves_relative_geometry() {
        let obs = Point::new(1.0, 1.0);
        let t = Similarity::into_local_frame(obs, 0.9, 3.0);
        let a = Point::new(4.0, 1.0);
        let b = Point::new(1.0, 5.0);
        // Distances scale by 1/unit.
        let la = t.apply(a);
        let lb = t.apply(b);
        assert!((la.dist(lb) - a.dist(b) / 3.0).abs() < 1e-12);
        // Chirality: orientation of triples is preserved.
        use crate::predicates::{orient2d, Orientation};
        let o_global = orient2d(obs, a, b);
        let o_local = orient2d(t.apply(obs), la, lb);
        assert_eq!(o_global, o_local);
        assert_ne!(o_global, Orientation::Collinear);
    }

    #[test]
    fn transforms_preserve_angles() {
        let t = Similarity::new(2.2, 5.0, Point::new(7.0, -1.0));
        let u = Vec2::new(1.0, 0.3);
        let v = Vec2::new(-0.5, 2.0);
        let before = crate::angle::cw_angle(u, v);
        let after = crate::angle::cw_angle(t.apply_vec(u), t.apply_vec(v));
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = Similarity::new(0.0, 0.0, Point::ORIGIN);
    }

    #[test]
    fn apply_all_maps_every_point() {
        let t = Similarity::translation(Vec2::new(1.0, 2.0));
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let out = t.apply_all(&pts);
        assert_eq!(out, vec![Point::new(1.0, 2.0), Point::new(2.0, 3.0)]);
    }
}
