//! Points and vectors on the Euclidean plane.
//!
//! The paper models robots as points in `ℝ²`; [`Point`] is that type.
//! [`Vec2`] is a displacement between points. Keeping the two distinct makes
//! transform code (translation acts on points, not on vectors) and robot
//! movement code self-documenting.

use crate::tol::Tol;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position on the plane.
///
/// # Example
///
/// ```
/// use gather_geom::{Point, Vec2};
/// let a = Point::new(1.0, 2.0);
/// let b = a + Vec2::new(3.0, -2.0);
/// assert_eq!(b, Point::new(4.0, 0.0));
/// assert_eq!((b - a).norm(), (9.0f64 + 4.0).sqrt());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement (direction and magnitude) on the plane.
///
/// # Example
///
/// ```
/// use gather_geom::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.normalized().norm(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.6}, {:.6}>", self.x, self.y)
    }
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point (`|u, v|` in the paper).
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance (avoids the square root).
    #[inline]
    pub fn dist2(self, other: Point) -> f64 {
        (self - other).norm2()
    }

    /// Approximate equality of positions under `tol.abs`-sized noise.
    #[inline]
    pub fn approx_eq(self, other: Point, tol: Tol) -> bool {
        tol.eq(self.x, other.x) && tol.eq(self.y, other.y)
    }

    /// Is this point within `radius` of `other`?
    #[inline]
    pub fn within(self, other: Point, radius: f64) -> bool {
        self.dist2(other) <= radius * radius
    }

    /// The point a fraction `t` of the way from `self` to `to`
    /// (`t = 0` gives `self`, `t = 1` gives `to`).
    ///
    /// This is how the simulator realises partial moves: a robot instructed
    /// to move from `r` to `d` may be stopped by the adversary anywhere on
    /// the segment `[r, d]` past the minimum step `δ`.
    #[inline]
    pub fn lerp(self, to: Point, t: f64) -> Point {
        Point::new(self.x + (to.x - self.x) * t, self.y + (to.y - self.y) * t)
    }

    /// The midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Displacement vector from the origin to this point.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Lexicographic comparison by `(x, y)`. Useful for deterministic
    /// canonical orderings of point sets.
    ///
    /// This is a total order for finite coordinates.
    #[inline]
    pub fn lex_cmp(self, other: Point) -> std::cmp::Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector with the given counter-clockwise angle from the `+x` axis.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (`z` component of the 3D cross product).
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// This vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics if the vector is exactly zero.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalise the zero vector");
        self / n
    }

    /// `Some(unit vector)` or `None` when the norm is `<= eps`.
    #[inline]
    pub fn try_normalized(self, eps: f64) -> Option<Vec2> {
        let n = self.norm();
        if n <= eps {
            None
        } else {
            Some(self / n)
        }
    }

    /// Perpendicular vector, rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// This vector rotated counter-clockwise by `theta` radians.
    #[inline]
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Counter-clockwise angle of this vector from the `+x` axis, in
    /// `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Interpret this vector as a point (origin + self).
    #[inline]
    pub fn to_point(self) -> Point {
        Point::new(self.x, self.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vec2) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vec2) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Point) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, other: Vec2) {
        self.x += other.x;
        self.y += other.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, other: Vec2) {
        self.x -= other.x;
        self.y -= other.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// Arithmetic mean of a non-empty set of points (the "center of gravity"
/// used by the convergence baseline — reference 9 of the paper).
///
/// # Panics
///
/// Panics if `points` is empty.
///
/// # Example
///
/// ```
/// use gather_geom::{centroid, Point};
/// let c = centroid(&[Point::new(0.0, 0.0), Point::new(2.0, 4.0)]);
/// assert_eq!(c, Point::new(1.0, 2.0));
/// ```
pub fn centroid(points: &[Point]) -> Point {
    assert!(!points.is_empty(), "centroid of an empty point set");
    let mut sx = 0.0;
    let mut sy = 0.0;
    for p in points {
        sx += p.x;
        sy += p.y;
    }
    let n = points.len() as f64;
    Point::new(sx / n, sy / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn point_vector_arithmetic_roundtrips() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        let v = b - a;
        assert_eq!(a + v, b);
        assert_eq!(b - v, a);
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist2(b), 25.0);
        assert!(a.within(b, 5.0));
        assert!(!a.within(b, 4.999));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(2.0, 3.0));
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0); // e2 is CCW from e1
        assert!(e2.cross(e1) < 0.0);
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v.x - 0.0).abs() < 1e-15);
        assert!((v.y - 1.0).abs() < 1e-15);
        let w = Vec2::new(1.0, 0.0).rotated(PI);
        assert!((w.x + 1.0).abs() < 1e-15);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let v = Vec2::new(2.0, 1.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
    }

    #[test]
    fn angle_of_axes() {
        assert_eq!(Vec2::new(1.0, 0.0).angle(), 0.0);
        assert!((Vec2::new(0.0, 1.0).angle() - FRAC_PI_2).abs() < 1e-15);
        assert!((Vec2::new(-1.0, 0.0).angle() - PI).abs() < 1e-15);
    }

    #[test]
    fn normalisation() {
        let v = Vec2::new(3.0, 4.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
        assert!(Vec2::ZERO.try_normalized(1e-12).is_none());
        assert!(v.try_normalized(1e-12).is_some());
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalizing_zero_panics() {
        let _ = Vec2::ZERO.normalized();
    }

    #[test]
    fn centroid_of_square_is_center() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Point::new(1.0, 1.0));
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        let a = Point::new(0.0, 5.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 6.0);
        assert_eq!(a.lex_cmp(b), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(c), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn approx_eq_uses_tolerance() {
        let t = Tol::default();
        let a = Point::new(1.0, 1.0);
        assert!(a.approx_eq(Point::new(1.0 + 1e-12, 1.0 - 1e-12), t));
        assert!(!a.approx_eq(Point::new(1.001, 1.0), t));
    }
}
