//! Exact floating-point expansion arithmetic for orientation signs.
//!
//! The fast [`orient2d`](crate::predicates::orient2d) filter answers most
//! queries from a single `f64` evaluation plus an error bound; when the
//! determinant's magnitude falls inside the bound the sign is uncertain.
//! This module resolves those cases **exactly**, using the classic
//! error-free transformations (Dekker/Knuth two-sum, FMA-based
//! two-product) to represent the determinant as a sum of non-overlapping
//! `f64` components whose leading term carries the true sign — the
//! non-adaptive core of Shewchuk's robust predicates.
//!
//! Exactness holds whenever the intermediate products do not overflow or
//! underflow to zero, which is guaranteed for coordinates in the range the
//! simulator produces (|x| ≤ 1e150 or so); robot workloads live around
//! |x| ≤ 1e3.

use crate::point::Point;

/// Error-free sum: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` exactly (Knuth's two-sum).
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free product: returns `(p, e)` with `p = fl(a·b)` and
/// `a·b = p + e` exactly (via fused multiply-add).
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

/// Adds a single component to an expansion (non-decreasing magnitude,
/// non-overlapping), returning the grown expansion.
/// (Shewchuk's `GROW-EXPANSION`.)
fn grow_expansion(e: &[f64], b: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(e.len() + 1);
    let mut q = b;
    for &component in e {
        let (sum, err) = two_sum(q, component);
        if err != 0.0 {
            out.push(err);
        }
        q = sum;
    }
    out.push(q);
    out
}

/// Sums two expansions.
fn expansion_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut out = e.to_vec();
    for &component in f {
        out = grow_expansion(&out, component);
    }
    out
}

/// The sign of the exact value represented by an expansion (its largest-
/// magnitude component is last and carries the sign).
fn expansion_sign(e: &[f64]) -> std::cmp::Ordering {
    // Components may include zeros; the last non-zero dominates.
    for &c in e.iter().rev() {
        if c != 0.0 {
            return c.partial_cmp(&0.0).expect("finite component");
        }
    }
    std::cmp::Ordering::Equal
}

/// The exact sign of `(b - a) × (c - a)`: `Greater` for counter-clockwise,
/// `Less` for clockwise, `Equal` for exactly collinear points.
///
/// Computes the 2×2 determinant `ax·by − ax·cy + bx·cy − bx·ay + cx·ay −
/// cx·by` as an exact expansion, so the answer is correct for every finite
/// input whose products stay in range — no epsilons involved.
///
/// # Example
///
/// ```
/// use gather_geom::exact::orient2d_exact_sign;
/// use gather_geom::Point;
/// use std::cmp::Ordering;
///
/// // A perturbation of one ulp is enough to decide the side.
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(1.0, 1.0);
/// let c = Point::new(2.0, (2.0f64).next_up());
/// assert_eq!(orient2d_exact_sign(a, b, c), Ordering::Greater);
/// let on = Point::new(2.0, 2.0);
/// assert_eq!(orient2d_exact_sign(a, b, on), Ordering::Equal);
/// ```
pub fn orient2d_exact_sign(a: Point, b: Point, c: Point) -> std::cmp::Ordering {
    // det = ax(by − cy) + bx(cy − ay) + cx(ay − by), expanded to six
    // products so every term is an exact two_prod of *input* values.
    let terms = [
        two_prod(a.x, b.y),
        two_prod(-a.x, c.y),
        two_prod(b.x, c.y),
        two_prod(-b.x, a.y),
        two_prod(c.x, a.y),
        two_prod(-c.x, b.y),
    ];
    let mut expansion: Vec<f64> = Vec::new();
    for (p, e) in terms {
        expansion = expansion_sum(&expansion, &[e, p]);
    }
    expansion_sign(&expansion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{orient2d, Orientation};
    use std::cmp::Ordering;

    #[test]
    fn two_sum_is_error_free() {
        let a = 1e16;
        let b = 1.0;
        let (s, e) = two_sum(a, b);
        // 1e16 + 1 is not representable; the error term recovers it.
        assert_eq!(s, 1e16);
        assert_eq!(e, 1.0);
    }

    #[test]
    fn two_prod_is_error_free() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 + f64::EPSILON;
        let (p, e) = two_prod(a, b);
        // (1+ε)² = 1 + 2ε + ε²; the ε² tail is the error term.
        assert_eq!(p, 1.0 + 2.0 * f64::EPSILON);
        assert_eq!(e, f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn exact_sign_on_clear_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orient2d_exact_sign(a, b, Point::new(0.0, 1.0)),
            Ordering::Greater
        );
        assert_eq!(
            orient2d_exact_sign(a, b, Point::new(0.0, -1.0)),
            Ordering::Less
        );
        assert_eq!(
            orient2d_exact_sign(a, b, Point::new(5.0, 0.0)),
            Ordering::Equal
        );
    }

    #[test]
    fn exact_sign_resolves_one_ulp_perturbations() {
        // Points on y = x with the last coordinate nudged by one ulp:
        // far below the fast filter's resolution at this magnitude.
        let a = Point::new(1e8, 1e8);
        let b = Point::new(2e8, 2e8);
        let up = Point::new(3e8, (3e8_f64).next_up());
        let down = Point::new(3e8, (3e8_f64).next_down());
        let on = Point::new(3e8, 3e8);
        assert_eq!(orient2d_exact_sign(a, b, up), Ordering::Greater);
        assert_eq!(orient2d_exact_sign(a, b, down), Ordering::Less);
        assert_eq!(orient2d_exact_sign(a, b, on), Ordering::Equal);
        // The filtered predicate calls all three collinear — that is the
        // gap this module closes.
        assert_eq!(orient2d(a, b, up), Orientation::Collinear);
    }

    #[test]
    fn exact_sign_agrees_with_filter_when_filter_is_sure() {
        let mut state: u64 = 99;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 16) % 2001) as f64 / 100.0 - 10.0
        };
        for _ in 0..500 {
            let a = Point::new(rand(), rand());
            let b = Point::new(rand(), rand());
            let c = Point::new(rand(), rand());
            let filtered = orient2d(a, b, c);
            let exact = orient2d_exact_sign(a, b, c);
            match filtered {
                Orientation::CounterClockwise => assert_eq!(exact, Ordering::Greater),
                Orientation::Clockwise => assert_eq!(exact, Ordering::Less),
                Orientation::Collinear => { /* filter unsure or truly collinear */ }
            }
        }
    }

    #[test]
    fn exact_sign_is_antisymmetric() {
        let a = Point::new(0.3, 1.7);
        let b = Point::new(-2.0, 0.4);
        let c = Point::new(1.5, -0.9);
        assert_eq!(
            orient2d_exact_sign(a, b, c),
            orient2d_exact_sign(b, a, c).reverse()
        );
        assert_eq!(orient2d_exact_sign(a, b, c), orient2d_exact_sign(b, c, a));
    }

    #[test]
    fn expansion_sign_handles_zero_padding() {
        assert_eq!(expansion_sign(&[0.0, 0.0]), Ordering::Equal);
        assert_eq!(expansion_sign(&[1.0, 0.0]), Ordering::Greater);
        assert_eq!(expansion_sign(&[0.5, -2.0]), Ordering::Less);
        assert_eq!(expansion_sign(&[]), Ordering::Equal);
    }
}
