//! Lines, rays (the paper's half-lines `HF(u, v)`), and segments.

use crate::point::{Point, Vec2};
use crate::predicates::{is_between, orient2d_tol, Orientation};
use crate::tol::Tol;

/// An (infinite) straight line through two distinct points — the paper's
/// `line(u, v)`.
///
/// # Example
///
/// ```
/// use gather_geom::{Line, Point, Tol};
/// let l = Line::through(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
/// assert!(l.contains(Point::new(5.0, 5.0), Tol::default()));
/// assert!(!l.contains(Point::new(5.0, 4.0), Tol::default()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    origin: Point,
    dir: Vec2, // unit length
}

impl Line {
    /// The line through `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn through(a: Point, b: Point) -> Self {
        Line {
            origin: a,
            dir: (b - a).normalized(),
        }
    }

    /// A point on the line.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Unit direction of the line (sign is arbitrary).
    pub fn dir(&self) -> Vec2 {
        self.dir
    }

    /// Does the line pass through `p` (within tolerance)?
    pub fn contains(&self, p: Point, tol: Tol) -> bool {
        orient2d_tol(self.origin, self.origin + self.dir, p, tol) == Orientation::Collinear
    }

    /// Signed parameter of the orthogonal projection of `p` onto the line:
    /// `project(origin) = 0`, increasing along `dir`.
    ///
    /// Collinear configurations are ordered by this parameter (the paper's
    /// `min(U(C))`, `max(U(C))`, medians).
    pub fn project(&self, p: Point) -> f64 {
        (p - self.origin).dot(self.dir)
    }

    /// The point at signed parameter `t` along the line.
    pub fn at(&self, t: f64) -> Point {
        self.origin + self.dir * t
    }

    /// Orthogonal distance from `p` to the line.
    pub fn distance_to(&self, p: Point) -> f64 {
        (p - self.origin).cross(self.dir).abs()
    }
}

/// The paper's half-line `HF(u, v)`: the open ray starting at `u` (excluding
/// `u` itself) and passing through `v`.
///
/// # Example
///
/// ```
/// use gather_geom::{Point, Ray, Tol};
/// let hf = Ray::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
/// let tol = Tol::default();
/// assert!(hf.contains(Point::new(0.5, 0.0), tol));
/// assert!(hf.contains(Point::new(9.0, 0.0), tol));
/// assert!(!hf.contains(Point::new(0.0, 0.0), tol)); // apex excluded
/// assert!(!hf.contains(Point::new(-1.0, 0.0), tol)); // behind the apex
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    apex: Point,
    dir: Vec2, // unit length
}

impl Ray {
    /// The half-line from `apex` through `through`.
    ///
    /// # Panics
    ///
    /// Panics if `apex == through`.
    pub fn new(apex: Point, through: Point) -> Self {
        Ray {
            apex,
            dir: (through - apex).normalized(),
        }
    }

    /// The half-line from `apex` in direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is the zero vector.
    pub fn from_dir(apex: Point, dir: Vec2) -> Self {
        Ray {
            apex,
            dir: dir.normalized(),
        }
    }

    /// The excluded starting point of the half-line.
    pub fn apex(&self) -> Point {
        self.apex
    }

    /// Unit direction of the half-line.
    pub fn dir(&self) -> Vec2 {
        self.dir
    }

    /// Is `p` on the open half-line (collinear, strictly past the apex)?
    ///
    /// The apex itself is *not* on `HF(u, v)`, per the paper's definition;
    /// points within `tol.snap` of the apex count as the apex.
    pub fn contains(&self, p: Point, tol: Tol) -> bool {
        if p.within(self.apex, tol.snap) {
            return false;
        }
        let v = p - self.apex;
        // On the supporting line?
        let line_pt = self.apex + self.dir;
        if orient2d_tol(self.apex, line_pt, p, tol) != Orientation::Collinear {
            return false;
        }
        v.dot(self.dir) > 0.0
    }

    /// The point at distance `t >= 0` from the apex along the ray.
    pub fn at(&self, t: f64) -> Point {
        self.apex + self.dir * t
    }
}

/// A closed segment `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates the segment `[a, b]` (degenerate segments are allowed).
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// The midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Is `p` on the closed segment (within tolerance)?
    pub fn contains(&self, p: Point, tol: Tol) -> bool {
        is_between(self.a, self.b, p, tol)
    }

    /// Closest point of the segment to `p`.
    pub fn closest_point_to(&self, p: Point) -> Point {
        let ab = self.b - self.a;
        let len2 = ab.norm2();
        if len2 == 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(ab) / len2).clamp(0.0, 1.0);
        self.a.lerp(self.b, t)
    }

    /// Distance from `p` to the segment.
    pub fn distance_to(&self, p: Point) -> f64 {
        p.dist(self.closest_point_to(p))
    }

    /// Do the two closed segments share at least one point?
    ///
    /// Uses orientation tests (robust for properly crossing segments) with
    /// betweenness fallbacks for the collinear/touching cases.
    pub fn intersects(&self, other: &Segment, tol: Tol) -> bool {
        use crate::predicates::{orient2d_tol, Orientation};
        let o1 = orient2d_tol(self.a, self.b, other.a, tol);
        let o2 = orient2d_tol(self.a, self.b, other.b, tol);
        let o3 = orient2d_tol(other.a, other.b, self.a, tol);
        let o4 = orient2d_tol(other.a, other.b, self.b, tol);
        if o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
        {
            return true; // proper crossing
        }
        // Touching or collinear overlap.
        (o1 == Orientation::Collinear && is_between(self.a, self.b, other.a, tol))
            || (o2 == Orientation::Collinear && is_between(self.a, self.b, other.b, tol))
            || (o3 == Orientation::Collinear && is_between(other.a, other.b, self.a, tol))
            || (o4 == Orientation::Collinear && is_between(other.a, other.b, self.b, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn line_contains_and_projection() {
        let l = Line::through(Point::new(1.0, 1.0), Point::new(4.0, 5.0));
        assert!(l.contains(Point::new(7.0, 9.0), t()));
        assert!(!l.contains(Point::new(7.0, 8.0), t()));
        assert_eq!(l.project(Point::new(1.0, 1.0)), 0.0);
        assert!((l.project(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn line_at_inverts_project() {
        let l = Line::through(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        let p = Point::new(6.0, 8.0);
        let q = l.at(l.project(p));
        assert!(p.dist(q) < 1e-12);
    }

    #[test]
    fn line_distance() {
        let l = Line::through(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!((l.distance_to(Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        assert_eq!(l.distance_to(Point::new(5.0, 0.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn degenerate_line_panics() {
        let p = Point::new(1.0, 1.0);
        let _ = Line::through(p, p);
    }

    #[test]
    fn ray_excludes_apex_and_behind() {
        let r = Ray::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        assert!(r.contains(Point::new(3.0, 3.0), t()));
        assert!(r.contains(Point::new(1.5, 1.5), t()));
        assert!(!r.contains(Point::new(1.0, 1.0), t()));
        assert!(!r.contains(Point::new(0.0, 0.0), t()));
        assert!(!r.contains(Point::new(3.0, 2.0), t()));
    }

    #[test]
    fn ray_at_walks_along_direction() {
        let r = Ray::from_dir(Point::ORIGIN, Vec2::new(0.0, 2.0));
        let p = r.at(3.0);
        assert!(p.dist(Point::new(0.0, 3.0)) < 1e-12);
    }

    #[test]
    fn segment_contains_and_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        assert!(s.contains(Point::new(1.0, 0.0), t()));
        assert!(s.contains(s.a, t()));
        assert!(!s.contains(Point::new(3.0, 0.0), t()));
        assert_eq!(s.midpoint(), Point::new(1.0, 0.0));
        assert_eq!(s.length(), 2.0);
    }

    #[test]
    fn segment_closest_point_clamps() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        assert_eq!(
            s.closest_point_to(Point::new(2.0, 5.0)),
            Point::new(2.0, 0.0)
        );
        assert_eq!(s.closest_point_to(Point::new(-3.0, 1.0)), s.a);
        assert_eq!(s.closest_point_to(Point::new(9.0, -2.0)), s.b);
        assert!((s.distance_to(Point::new(2.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_intersection_proper_crossing() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let s2 = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        assert!(s1.intersects(&s2, t()));
    }

    #[test]
    fn segment_intersection_disjoint() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(1.0, 1.0));
        assert!(!s1.intersects(&s2, t()));
        let s3 = Segment::new(Point::new(2.0, 0.0), Point::new(3.0, 0.0));
        assert!(!s1.intersects(&s3, t())); // collinear but separated
    }

    #[test]
    fn segment_intersection_touching_endpoint() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, 0.0), Point::new(2.0, 3.0));
        assert!(s1.intersects(&s2, t()));
    }

    #[test]
    fn segment_intersection_collinear_overlap() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, 0.0), Point::new(5.0, 0.0));
        assert!(s1.intersects(&s2, t()));
    }

    #[test]
    fn segment_intersection_t_shape() {
        // One endpoint interior to the other segment.
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, 0.0), Point::new(2.0, -3.0));
        assert!(s1.intersects(&s2, t()));
    }

    #[test]
    fn degenerate_segment() {
        let p = Point::new(1.0, 2.0);
        let s = Segment::new(p, p);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.closest_point_to(Point::new(9.0, 9.0)), p);
        assert!(s.contains(p, t()));
    }
}
