//! Convex hulls — the paper's `CH(Q)`.
//!
//! The `L2W` branch of WAIT-FREE-GATHER needs the extreme points of a
//! collinear configuration (the hull of a collinear set is its two
//! endpoints), and the asymmetric branch reasons about hull membership.
//! Implemented with Andrew's monotone chain over the filtered orientation
//! predicate.

use crate::point::Point;
use crate::predicates::{orient2d, Orientation};
use crate::soa::PointBuffer;
use crate::tol::Tol;

/// Convex hull of a point set, as the vertices of the hull polygon in
/// counter-clockwise order starting from the lexicographically smallest
/// point. Interior points and points on hull edges are excluded; duplicate
/// points are collapsed.
///
/// Degenerate cases: the hull of a single (possibly repeated) point is that
/// point; the hull of a collinear set is its two extreme points.
///
/// # Example
///
/// ```
/// use gather_geom::{convex_hull, Point};
/// let pts = [
///     Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0), Point::new(1.0, 1.0), // interior
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull.len(), 4);
/// assert!(!hull.contains(&Point::new(1.0, 1.0)));
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut hull = Vec::new();
    HULL_SCRATCH.with(|c| {
        let mut sort = std::mem::take(&mut *c.borrow_mut());
        sort.clear();
        sort.extend_from_slice(points);
        convex_hull_into(&mut sort, &mut hull);
        *c.borrow_mut() = sort;
    });
    hull
}

/// [`convex_hull`] of the points of a [`PointBuffer`] — the SoA mirror of a
/// configuration feeds the monotone chain without an intermediate
/// array-of-structs copy per call. Agrees bitwise with the slice entry
/// point on identical point sequences.
pub fn convex_hull_soa(buf: &PointBuffer) -> Vec<Point> {
    let mut hull = Vec::new();
    HULL_SCRATCH.with(|c| {
        let mut sort = std::mem::take(&mut *c.borrow_mut());
        buf.gather_into(&mut sort);
        convex_hull_into(&mut sort, &mut hull);
        *c.borrow_mut() = sort;
    });
    hull
}

thread_local! {
    /// Reusable sort buffer for the allocating hull entry points.
    static HULL_SCRATCH: std::cell::RefCell<Vec<Point>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Allocation-free core of [`convex_hull`]: sorts and dedups `pts` in place
/// (destroying its order), then writes the hull vertices into `out`
/// (cleared first, capacity reused). Callers on hot paths hold both buffers
/// across rounds so the steady state performs no allocation.
pub fn convex_hull_into(pts: &mut Vec<Point>, out: &mut Vec<Point>) {
    out.clear();
    pts.sort_by(|a, b| a.lex_cmp(*b));
    pts.dedup_by(|a, b| a == b);
    let n = pts.len();
    if n <= 2 {
        out.extend_from_slice(pts);
        return;
    }

    out.reserve(2 * n);
    // Lower hull.
    for &p in pts.iter() {
        while out.len() >= 2
            && orient2d(out[out.len() - 2], out[out.len() - 1], p) != Orientation::CounterClockwise
        {
            out.pop();
        }
        out.push(p);
    }
    // Upper hull.
    let lower_len = out.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while out.len() >= lower_len
            && orient2d(out[out.len() - 2], out[out.len() - 1], p) != Orientation::CounterClockwise
        {
            out.pop();
        }
        out.push(p);
    }
    out.pop(); // last point equals the first
    if out.is_empty() {
        // All points collinear: monotone chain collapses; return extremes.
        out.push(pts[0]);
        out.push(pts[n - 1]);
    }
}

/// Is `p` inside or on the boundary of the convex hull `hull` (vertices in
/// counter-clockwise order, as produced by [`convex_hull`])?
///
/// # Example
///
/// ```
/// use gather_geom::{convex_hull, hull_contains, Point, Tol};
/// let hull = convex_hull(&[
///     Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(0.0, 4.0),
/// ]);
/// let tol = Tol::default();
/// assert!(hull_contains(&hull, Point::new(1.0, 1.0), tol));
/// assert!(hull_contains(&hull, Point::new(2.0, 0.0), tol)); // edge
/// assert!(!hull_contains(&hull, Point::new(3.0, 3.0), tol));
/// ```
pub fn hull_contains(hull: &[Point], p: Point, tol: Tol) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0].approx_eq(p, tol),
        2 => crate::predicates::is_between(hull[0], hull[1], p, tol),
        _ => {
            for i in 0..hull.len() {
                let a = hull[i];
                let b = hull[(i + 1) % hull.len()];
                if crate::predicates::orient2d_tol(a, b, p, tol) == Orientation::Clockwise {
                    return false;
                }
            }
            true
        }
    }
}

/// The vertices of the hull that are *strict* extreme points (corners) of
/// the point set. For a collinear set this is its two endpoints — exactly
/// the robots the `L2W` branch instructs to leave the line.
pub fn extreme_points(points: &[Point]) -> Vec<Point> {
    convex_hull(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
            Point::new(2.0, 0.0), // on an edge: excluded
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for corner in &pts[..4] {
            assert!(hull.contains(corner));
        }
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(2.0, 4.0),
            Point::new(-1.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for i in 0..hull.len() {
            let a = hull[i];
            let b = hull[(i + 1) % hull.len()];
            let c = hull[(i + 2) % hull.len()];
            assert_eq!(orient2d(a, b, c), Orientation::CounterClockwise);
        }
    }

    #[test]
    fn hull_of_collinear_set_is_two_endpoints() {
        let pts: Vec<Point> = (0..7)
            .map(|i| Point::new(i as f64, i as f64 * 2.0))
            .collect();
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2);
        assert!(hull.contains(&Point::new(0.0, 0.0)));
        assert!(hull.contains(&Point::new(6.0, 12.0)));
    }

    #[test]
    fn hull_degenerate_cases() {
        assert!(convex_hull(&[]).is_empty());
        let single = convex_hull(&[Point::new(1.0, 1.0); 4]);
        assert_eq!(single, vec![Point::new(1.0, 1.0)]);
        let pair = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 0.0),
        ]);
        assert_eq!(pair.len(), 2);
    }

    #[test]
    fn containment_in_triangle() {
        let tol = Tol::default();
        let hull = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(3.0, 6.0),
        ]);
        assert!(hull_contains(&hull, Point::new(3.0, 2.0), tol));
        assert!(hull_contains(&hull, Point::new(0.0, 0.0), tol)); // vertex
        assert!(hull_contains(&hull, Point::new(3.0, 0.0), tol)); // edge
        assert!(!hull_contains(&hull, Point::new(3.0, 7.0), tol));
        assert!(!hull_contains(&hull, Point::new(-0.1, 0.0), tol));
    }

    #[test]
    fn containment_in_degenerate_hulls() {
        let tol = Tol::default();
        let pt_hull = convex_hull(&[Point::new(2.0, 2.0)]);
        assert!(hull_contains(&pt_hull, Point::new(2.0, 2.0), tol));
        assert!(!hull_contains(&pt_hull, Point::new(2.0, 3.0), tol));
        let seg_hull = convex_hull(&[Point::new(0.0, 0.0), Point::new(4.0, 0.0)]);
        assert!(hull_contains(&seg_hull, Point::new(2.0, 0.0), tol));
        assert!(!hull_contains(&seg_hull, Point::new(2.0, 1.0), tol));
        assert!(!hull_contains(&[], Point::ORIGIN, tol));
    }

    #[test]
    fn all_input_points_are_inside_their_hull() {
        // Deterministic pseudo-random scatter.
        let mut pts = Vec::new();
        let mut state: u64 = 42;
        for _ in 0..100 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 16) % 1000) as f64 / 100.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((state >> 16) % 1000) as f64 / 100.0;
            pts.push(Point::new(x, y));
        }
        let hull = convex_hull(&pts);
        let tol = Tol::default();
        for p in &pts {
            assert!(hull_contains(&hull, *p, tol), "point {p} escaped its hull");
        }
    }

    #[test]
    fn soa_entry_point_matches_slice_path_bitwise() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(2.0, 4.0),
            Point::new(-1.0, 2.0),
            Point::new(1.0, 1.0),
        ];
        let buf = PointBuffer::from_points(&pts);
        assert_eq!(convex_hull_soa(&buf), convex_hull(&pts));
        assert!(convex_hull_soa(&PointBuffer::new()).is_empty());
    }

    #[test]
    fn hull_into_reuses_buffers() {
        let mut sort = Vec::new();
        let mut out = Vec::new();
        let square = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        sort.extend_from_slice(&square);
        convex_hull_into(&mut sort, &mut out);
        assert_eq!(out.len(), 4);
        // Second use with a collinear set: buffers recycled, extremes out.
        sort.clear();
        sort.extend((0..5).map(|i| Point::new(i as f64, 0.0)));
        convex_hull_into(&mut sort, &mut out);
        assert_eq!(out, vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)]);
    }
}
