//! Data-oriented point storage and chunked batch kernels.
//!
//! The hot loops of the suite — Weiszfeld iteration sums, distance
//! accumulation, farthest/containment scans, angle-key computation — walk
//! every robot position doing a few floating-point operations per point.
//! Stored as an array of [`Point`] structs, each iteration interleaves `x`
//! and `y` loads and a lane-crossing `hypot`; stored as two parallel `f64`
//! slices (structure of arrays), the same loops compile to straight-line
//! SIMD over the coordinate streams.
//!
//! [`PointBuffer`] is that storage. The kernels in this module operate on
//! its slices in fixed-size chunks with independent accumulator lanes, so
//! LLVM can vectorise them without any re-association licence (the lane
//! sums are combined in a fixed order, keeping results deterministic across
//! runs and thread counts). The scalar array-of-structs references the
//! kernels replace live in [`reference`]; the seeded property tests and the
//! `b7_scaling` ablation hold the two within 1e-12 of each other.
//!
//! Kernels use `sqrt(dx² + dy²)` where the scalar paths used `hypot`:
//! coordinates in this suite are robot positions of moderate magnitude, so
//! the overflow protection `hypot` buys costs a libm call per point for no
//! benefit. The difference is below 1 ulp of the true distance for such
//! inputs and is covered by the property-test tolerance.

use crate::point::{Point, Vec2};

/// Number of independent accumulator lanes in the chunked kernels: four
/// `f64`s fill a 256-bit vector register.
const LANES: usize = 4;

/// Robot positions stored as two parallel coordinate arrays (structure of
/// arrays), the layout the batch kernels below consume.
///
/// # Example
///
/// ```
/// use gather_geom::{soa, Point, PointBuffer};
/// let buf = PointBuffer::from_points(&[Point::new(3.0, 4.0), Point::ORIGIN]);
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.get(0), Point::new(3.0, 4.0));
/// assert_eq!(soa::sum_distances(&buf, Point::ORIGIN), 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PointBuffer {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PointBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        PointBuffer::default()
    }

    /// An empty buffer with room for `n` points in each coordinate array.
    pub fn with_capacity(n: usize) -> Self {
        PointBuffer {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
        }
    }

    /// A buffer holding a copy of `points`.
    pub fn from_points(points: &[Point]) -> Self {
        let mut buf = PointBuffer::with_capacity(points.len());
        buf.extend_from_points(points);
        buf
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Removes all points, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
    }

    /// Appends one point.
    pub fn push(&mut self, p: Point) {
        self.xs.push(p.x);
        self.ys.push(p.y);
    }

    /// Appends a slice of points (transposing into the coordinate arrays).
    pub fn extend_from_points(&mut self, points: &[Point]) {
        self.xs.reserve(points.len());
        self.ys.reserve(points.len());
        for p in points {
            self.xs.push(p.x);
            self.ys.push(p.y);
        }
    }

    /// Overwrites the buffer with `points`, reusing the existing capacity —
    /// the allocation-free resync the round loop performs each round.
    pub fn copy_from_points(&mut self, points: &[Point]) {
        self.clear();
        self.extend_from_points(points);
    }

    /// The point at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Replaces the point at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, p: Point) {
        self.xs[i] = p.x;
        self.ys[i] = p.y;
    }

    /// The `x` coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The `y` coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Both coordinate slices at once, for kernels over raw slices.
    pub fn as_slices(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// Writes the points back into an array-of-structs buffer (cleared
    /// first, capacity reused).
    pub fn gather_into(&self, out: &mut Vec<Point>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(Point::new(self.xs[i], self.ys[i]));
        }
    }

    /// Iterates over the stored points.
    pub fn iter_points(&self) -> impl Iterator<Item = Point> + '_ {
        self.xs
            .iter()
            .zip(self.ys.iter())
            .map(|(&x, &y)| Point::new(x, y))
    }
}

impl PartialEq for PointBuffer {
    fn eq(&self, other: &Self) -> bool {
        self.xs == other.xs && self.ys == other.ys
    }
}

impl FromIterator<Point> for PointBuffer {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        let mut buf = PointBuffer::new();
        for p in iter {
            buf.push(p);
        }
        buf
    }
}

/// Sums `LANES` partial accumulators in a fixed order, so kernel results do
/// not depend on how the optimiser schedules the lanes.
#[inline]
fn reduce(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Sum of Euclidean distances from `at` to every point of `buf` — the
/// batch form of [`crate::weber_objective`].
pub fn sum_distances(buf: &PointBuffer, at: Point) -> f64 {
    sum_distances_slices(buf.xs(), buf.ys(), at)
}

/// [`sum_distances`] over raw coordinate slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sum_distances_slices(xs: &[f64], ys: &[f64], at: Point) -> f64 {
    assert_eq!(xs.len(), ys.len(), "coordinate slices of unequal length");
    let mut acc = [0.0f64; LANES];
    let chunks = xs.len() / LANES * LANES;
    for base in (0..chunks).step_by(LANES) {
        for lane in 0..LANES {
            let dx = xs[base + lane] - at.x;
            let dy = ys[base + lane] - at.y;
            acc[lane] += (dx * dx + dy * dy).sqrt();
        }
    }
    let mut tail = 0.0;
    for i in chunks..xs.len() {
        let dx = xs[i] - at.x;
        let dy = ys[i] - at.y;
        tail += (dx * dx + dy * dy).sqrt();
    }
    reduce(acc) + tail
}

/// The accumulated sums of one Weiszfeld iteration at `x` (see
/// [`weiszfeld_sums`]): everything the Vardi–Zhang update rule needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeiszfeldSums {
    /// `Σ p_i / d_i` over the far points, x component.
    pub num_x: f64,
    /// `Σ p_i / d_i` over the far points, y component.
    pub num_y: f64,
    /// `Σ 1 / d_i` over the far points.
    pub denom: f64,
    /// `Σ (p_i − x) / d_i` over the far points (the subgradient pull).
    pub pull_x: f64,
    /// `Σ (p_i − x) / d_i` over the far points, y component.
    pub pull_y: f64,
    /// Number of points with `d_i ≤ eps` (coincident with the iterate).
    pub coincident: usize,
}

impl WeiszfeldSums {
    /// The Weiszfeld update target `T(x) = num / denom`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `denom` is zero.
    pub fn target(&self) -> Point {
        debug_assert!(self.denom != 0.0);
        Point::new(self.num_x / self.denom, self.num_y / self.denom)
    }

    /// The pull `R(x)` as a vector.
    pub fn pull(&self) -> Vec2 {
        Vec2::new(self.pull_x, self.pull_y)
    }
}

/// One Weiszfeld iteration's sums at the iterate `at`: for every point with
/// distance `d > eps` accumulate `p/d`, `1/d` and `(p − at)/d`; points
/// within `eps` are counted as coincident (the Vardi–Zhang mass at the
/// iterate). This is the hot inner loop of the Weber solver as a chunked
/// batch kernel.
pub fn weiszfeld_sums(buf: &PointBuffer, at: Point, eps: f64) -> WeiszfeldSums {
    weiszfeld_sums_slices(buf.xs(), buf.ys(), at, eps)
}

/// [`weiszfeld_sums`] over raw coordinate slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn weiszfeld_sums_slices(xs: &[f64], ys: &[f64], at: Point, eps: f64) -> WeiszfeldSums {
    assert_eq!(xs.len(), ys.len(), "coordinate slices of unequal length");
    let mut num_x = [0.0f64; LANES];
    let mut num_y = [0.0f64; LANES];
    let mut den = [0.0f64; LANES];
    let mut pull_x = [0.0f64; LANES];
    let mut pull_y = [0.0f64; LANES];
    let mut coincident = 0usize;
    let n = xs.len();
    let chunks = n / LANES * LANES;
    for base in (0..chunks).step_by(LANES) {
        for lane in 0..LANES {
            let px = xs[base + lane];
            let py = ys[base + lane];
            let dx = px - at.x;
            let dy = py - at.y;
            let d = (dx * dx + dy * dy).sqrt();
            // Branchless: far points get weight 1/d, coincident points get
            // weight 0 and bump the counter — a select, not a branch.
            let far = d > eps;
            let w = if far { d.recip() } else { 0.0 };
            coincident += usize::from(!far);
            num_x[lane] += px * w;
            num_y[lane] += py * w;
            den[lane] += w;
            pull_x[lane] += dx * w;
            pull_y[lane] += dy * w;
        }
    }
    let mut sums = WeiszfeldSums {
        num_x: reduce(num_x),
        num_y: reduce(num_y),
        denom: reduce(den),
        pull_x: reduce(pull_x),
        pull_y: reduce(pull_y),
        coincident,
    };
    for i in chunks..n {
        let px = xs[i];
        let py = ys[i];
        let dx = px - at.x;
        let dy = py - at.y;
        let d = (dx * dx + dy * dy).sqrt();
        if d > eps {
            let w = d.recip();
            sums.num_x += px * w;
            sums.num_y += py * w;
            sums.denom += w;
            sums.pull_x += dx * w;
            sums.pull_y += dy * w;
        } else {
            sums.coincident += 1;
        }
    }
    sums
}

/// Arithmetic mean of the stored points — the batch form of
/// [`crate::centroid`].
///
/// # Panics
///
/// Panics if the buffer is empty.
pub fn centroid(buf: &PointBuffer) -> Point {
    assert!(!buf.is_empty(), "centroid of an empty point set");
    let (xs, ys) = buf.as_slices();
    let mut sx = [0.0f64; LANES];
    let mut sy = [0.0f64; LANES];
    let chunks = xs.len() / LANES * LANES;
    for base in (0..chunks).step_by(LANES) {
        for lane in 0..LANES {
            sx[lane] += xs[base + lane];
            sy[lane] += ys[base + lane];
        }
    }
    let mut tx = reduce(sx);
    let mut ty = reduce(sy);
    for i in chunks..xs.len() {
        tx += xs[i];
        ty += ys[i];
    }
    let n = xs.len() as f64;
    Point::new(tx / n, ty / n)
}

/// The index and squared distance of the point farthest from `from` — the
/// containment/extent scan behind SEC verification, configuration extents
/// and the median far-point search. Ties resolve to the lowest index.
///
/// # Panics
///
/// Panics if the buffer is empty.
pub fn max_dist2(buf: &PointBuffer, from: Point) -> (usize, f64) {
    assert!(!buf.is_empty(), "farthest-point scan over an empty set");
    let (xs, ys) = buf.as_slices();
    let mut best = 0usize;
    let mut best_d2 = f64::NEG_INFINITY;
    for i in 0..xs.len() {
        let dx = xs[i] - from.x;
        let dy = ys[i] - from.y;
        let d2 = dx * dx + dy * dy;
        if d2 > best_d2 {
            best = i;
            best_d2 = d2;
        }
    }
    (best, best_d2)
}

/// The largest squared distance from `from` to any point whose mask entry
/// is `true` — the batched gathered-detection prefilter of lockstep
/// execution: with `from` an alive robot's position and `mask` the alive
/// set, `masked_max_dist2 <= snap²` is arithmetically identical to "every
/// alive robot is `within(from, snap)`" (both compare `dx·dx + dy·dy`
/// against `snap·snap`), so the prefilter is exact, not conservative.
/// Returns `f64::NEG_INFINITY` when no mask entry is set.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn masked_max_dist2(xs: &[f64], ys: &[f64], mask: &[bool], from: Point) -> f64 {
    assert_eq!(xs.len(), ys.len(), "coordinate slices of unequal length");
    assert_eq!(xs.len(), mask.len(), "coordinate slices of unequal length");
    let mut best = [f64::NEG_INFINITY; LANES];
    let chunks = xs.len() / LANES * LANES;
    for base in (0..chunks).step_by(LANES) {
        for lane in 0..LANES {
            let dx = xs[base + lane] - from.x;
            let dy = ys[base + lane] - from.y;
            // Branchless: masked-out points contribute NEG_INFINITY, which
            // never wins the max.
            let d2 = if mask[base + lane] {
                dx * dx + dy * dy
            } else {
                f64::NEG_INFINITY
            };
            best[lane] = best[lane].max(d2);
        }
    }
    let mut out = best[0].max(best[1]).max(best[2].max(best[3]));
    for i in chunks..xs.len() {
        if mask[i] {
            let dx = xs[i] - from.x;
            let dy = ys[i] - from.y;
            out = out.max(dx * dx + dy * dy);
        }
    }
    out
}

/// The unit-vector pull of the points strictly outside `zone` of `at`,
/// together with the count of points inside the zone — the Weber
/// subgradient prefilter scan of quasi-regularity detection as a batch
/// kernel. Points within `zone` (inclusive) contribute to the count and
/// not to the pull.
pub fn radial_pull(buf: &PointBuffer, at: Point, zone: f64) -> (Vec2, usize) {
    let (xs, ys) = buf.as_slices();
    let zone2 = zone * zone;
    let mut px = [0.0f64; LANES];
    let mut py = [0.0f64; LANES];
    let mut inside = 0usize;
    let chunks = xs.len() / LANES * LANES;
    for base in (0..chunks).step_by(LANES) {
        for lane in 0..LANES {
            let dx = xs[base + lane] - at.x;
            let dy = ys[base + lane] - at.y;
            let d2 = dx * dx + dy * dy;
            let out = d2 > zone2;
            let w = if out { d2.sqrt().recip() } else { 0.0 };
            inside += usize::from(!out);
            px[lane] += dx * w;
            py[lane] += dy * w;
        }
    }
    let mut pull = Vec2::new(reduce(px), reduce(py));
    for i in chunks..xs.len() {
        let dx = xs[i] - at.x;
        let dy = ys[i] - at.y;
        let d2 = dx * dx + dy * dy;
        if d2 > zone2 {
            let w = d2.sqrt().recip();
            pull.x += dx * w;
            pull.y += dy * w;
        } else {
            inside += 1;
        }
    }
    (pull, inside)
}

/// Direction angles (counter-clockwise from `+x`, normalised to `[0, 2π)`)
/// of every point farther than `zone` from `center`, appended to `out`
/// (cleared first, capacity reused) — the angle-sort key computation
/// feeding the classification's direction buckets.
///
/// Element-for-element identical to the scalar filter-and-`atan2` it
/// replaces; batching removes the per-call allocation and keeps the
/// distance filter in straight-line code (`atan2` itself stays a libm
/// call — there is no vector form to exploit).
pub fn angle_keys_into(buf: &PointBuffer, center: Point, zone: f64, out: &mut Vec<f64>) {
    let (xs, ys) = buf.as_slices();
    out.clear();
    let zone2 = zone * zone;
    for i in 0..xs.len() {
        let dx = xs[i] - center.x;
        let dy = ys[i] - center.y;
        if dx * dx + dy * dy > zone2 {
            out.push(crate::angle::normalize_tau(dy.atan2(dx)));
        }
    }
}

/// Indices at which `before` and `after` differ *bitwise*, appended to
/// `out` (cleared first, capacity reused) — the dirty-set extraction the
/// incremental re-analysis path runs after canonicalisation. Bitwise (not
/// tolerance) comparison is deliberate: the analysis memo keys on exact
/// coordinates, so any representational change, however small, must mark
/// the robot dirty.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn diff_indices(before: &[Point], after: &[Point], out: &mut Vec<usize>) {
    assert_eq!(before.len(), after.len(), "point slices of unequal length");
    out.clear();
    for i in 0..before.len() {
        if before[i].x.to_bits() != after[i].x.to_bits()
            || before[i].y.to_bits() != after[i].y.to_bits()
        {
            out.push(i);
        }
    }
}

/// [`weiszfeld_sums`] restricted to the points at `idx` — the dirty-gather
/// form used when only a subset of robots needs re-accumulation. Chunked
/// over the index list with the same fixed-order lane reduction as the
/// dense kernel.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn weiszfeld_sums_gather(
    buf: &PointBuffer,
    idx: &[usize],
    at: Point,
    eps: f64,
) -> WeiszfeldSums {
    let (xs, ys) = buf.as_slices();
    let mut num_x = [0.0f64; LANES];
    let mut num_y = [0.0f64; LANES];
    let mut den = [0.0f64; LANES];
    let mut pull_x = [0.0f64; LANES];
    let mut pull_y = [0.0f64; LANES];
    let mut coincident = 0usize;
    let chunks = idx.len() / LANES * LANES;
    for base in (0..chunks).step_by(LANES) {
        for lane in 0..LANES {
            let i = idx[base + lane];
            let px = xs[i];
            let py = ys[i];
            let dx = px - at.x;
            let dy = py - at.y;
            let d = (dx * dx + dy * dy).sqrt();
            let far = d > eps;
            let w = if far { d.recip() } else { 0.0 };
            coincident += usize::from(!far);
            num_x[lane] += px * w;
            num_y[lane] += py * w;
            den[lane] += w;
            pull_x[lane] += dx * w;
            pull_y[lane] += dy * w;
        }
    }
    let mut sums = WeiszfeldSums {
        num_x: reduce(num_x),
        num_y: reduce(num_y),
        denom: reduce(den),
        pull_x: reduce(pull_x),
        pull_y: reduce(pull_y),
        coincident,
    };
    for &i in &idx[chunks..] {
        let px = xs[i];
        let py = ys[i];
        let dx = px - at.x;
        let dy = py - at.y;
        let d = (dx * dx + dy * dy).sqrt();
        if d > eps {
            let w = d.recip();
            sums.num_x += px * w;
            sums.num_y += py * w;
            sums.denom += w;
            sums.pull_x += dx * w;
            sums.pull_y += dy * w;
        } else {
            sums.coincident += 1;
        }
    }
    sums
}

/// [`max_dist2`] restricted to the points at `idx`: the original point
/// index and squared distance of the farthest gathered point. Ties resolve
/// to the earliest position in `idx`.
///
/// # Panics
///
/// Panics if `idx` is empty or any index is out of bounds.
pub fn max_dist2_gather(buf: &PointBuffer, idx: &[usize], from: Point) -> (usize, f64) {
    assert!(!idx.is_empty(), "farthest-point scan over an empty set");
    let (xs, ys) = buf.as_slices();
    let mut best = idx[0];
    let mut best_d2 = f64::NEG_INFINITY;
    for &i in idx {
        let dx = xs[i] - from.x;
        let dy = ys[i] - from.y;
        let d2 = dx * dx + dy * dy;
        if d2 > best_d2 {
            best = i;
            best_d2 = d2;
        }
    }
    (best, best_d2)
}

/// [`angle_keys_into`] restricted to the points at `idx`, in `idx` order —
/// the dirty-gather form of the angle-sort key computation, used to
/// recompute keys for moved robots only.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn angle_keys_gather_into(
    buf: &PointBuffer,
    idx: &[usize],
    center: Point,
    zone: f64,
    out: &mut Vec<f64>,
) {
    let (xs, ys) = buf.as_slices();
    out.clear();
    let zone2 = zone * zone;
    for &i in idx {
        let dx = xs[i] - center.x;
        let dy = ys[i] - center.y;
        if dx * dx + dy * dy > zone2 {
            out.push(crate::angle::normalize_tau(dy.atan2(dx)));
        }
    }
}

/// Scalar array-of-structs reference implementations of every kernel in
/// this module — the code the kernels replaced, kept callable for the
/// seeded agreement property tests and the `b7_scaling` SoA-vs-AoS
/// ablation. Not used on any hot path.
pub mod reference {
    use super::WeiszfeldSums;
    use crate::point::{Point, Vec2};

    /// Scalar counterpart of [`super::sum_distances`] (`hypot`-based, as
    /// the original Weber objective).
    pub fn sum_distances(points: &[Point], at: Point) -> f64 {
        points.iter().map(|p| at.dist(*p)).sum()
    }

    /// Scalar counterpart of [`super::weiszfeld_sums`]: the original
    /// sequential Weiszfeld accumulation loop.
    pub fn weiszfeld_sums(points: &[Point], at: Point, eps: f64) -> WeiszfeldSums {
        let mut sums = WeiszfeldSums::default();
        for p in points {
            let d = at.dist(*p);
            if d <= eps {
                sums.coincident += 1;
                continue;
            }
            sums.num_x += p.x / d;
            sums.num_y += p.y / d;
            sums.denom += 1.0 / d;
            sums.pull_x += (p.x - at.x) / d;
            sums.pull_y += (p.y - at.y) / d;
        }
        sums
    }

    /// Scalar counterpart of [`super::centroid`].
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn centroid(points: &[Point]) -> Point {
        crate::point::centroid(points)
    }

    /// Scalar counterpart of [`super::max_dist2`].
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn max_dist2(points: &[Point], from: Point) -> (usize, f64) {
        assert!(!points.is_empty(), "farthest-point scan over an empty set");
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, p) in points.iter().enumerate() {
            let d2 = from.dist2(*p);
            if d2 > best.1 {
                best = (i, d2);
            }
        }
        best
    }

    /// Scalar counterpart of [`super::masked_max_dist2`].
    pub fn masked_max_dist2(points: &[Point], mask: &[bool], from: Point) -> f64 {
        assert_eq!(points.len(), mask.len(), "mask of unequal length");
        points
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m)
            .map(|(p, _)| from.dist2(*p))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Scalar counterpart of [`super::radial_pull`]: the original
    /// quasi-regularity prefilter loop.
    pub fn radial_pull(points: &[Point], at: Point, zone: f64) -> (Vec2, usize) {
        let mut pull = Vec2::ZERO;
        let mut inside = 0usize;
        for q in points {
            if q.within(at, zone) {
                inside += 1;
            } else {
                pull += (*q - at).normalized();
            }
        }
        (pull, inside)
    }

    /// Scalar counterpart of [`super::angle_keys_into`].
    pub fn angle_keys_into(points: &[Point], center: Point, zone: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            points
                .iter()
                .filter(|p| !p.within(center, zone))
                .map(|p| crate::angle::normalize_tau((*p - center).angle())),
        );
    }

    /// Scalar counterpart of [`super::diff_indices`].
    pub fn diff_indices(before: &[Point], after: &[Point], out: &mut Vec<usize>) {
        assert_eq!(before.len(), after.len(), "point slices of unequal length");
        out.clear();
        out.extend((0..before.len()).filter(|&i| {
            before[i].x.to_bits() != after[i].x.to_bits()
                || before[i].y.to_bits() != after[i].y.to_bits()
        }));
    }

    /// Scalar counterpart of [`super::weiszfeld_sums_gather`]: the dense
    /// scalar loop over the gathered subset.
    pub fn weiszfeld_sums_gather(
        points: &[Point],
        idx: &[usize],
        at: Point,
        eps: f64,
    ) -> WeiszfeldSums {
        let subset: Vec<Point> = idx.iter().map(|&i| points[i]).collect();
        weiszfeld_sums(&subset, at, eps)
    }

    /// Scalar counterpart of [`super::max_dist2_gather`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty.
    pub fn max_dist2_gather(points: &[Point], idx: &[usize], from: Point) -> (usize, f64) {
        assert!(!idx.is_empty(), "farthest-point scan over an empty set");
        let mut best = (idx[0], f64::NEG_INFINITY);
        for &i in idx {
            let d2 = from.dist2(points[i]);
            if d2 > best.1 {
                best = (i, d2);
            }
        }
        best
    }

    /// Scalar counterpart of [`super::angle_keys_gather_into`].
    pub fn angle_keys_gather_into(
        points: &[Point],
        idx: &[usize],
        center: Point,
        zone: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(
            idx.iter()
                .map(|&i| points[i])
                .filter(|p| !p.within(center, zone))
                .map(|p| crate::angle::normalize_tau((p - center).angle())),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 16) % 2_000) as f64 / 100.0 - 10.0
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn buffer_roundtrips_points() {
        let pts = scatter(13, 7);
        let buf = PointBuffer::from_points(&pts);
        assert_eq!(buf.len(), 13);
        let mut back = Vec::new();
        buf.gather_into(&mut back);
        assert_eq!(back, pts);
        assert_eq!(buf.iter_points().collect::<Vec<_>>(), pts);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(buf.get(i), *p);
        }
    }

    #[test]
    fn buffer_mutation_and_reuse() {
        let mut buf = PointBuffer::from_points(&scatter(5, 1));
        buf.set(2, Point::new(9.0, -9.0));
        assert_eq!(buf.get(2), Point::new(9.0, -9.0));
        let fresh = scatter(3, 2);
        buf.copy_from_points(&fresh);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.get(0), fresh[0]);
        buf.clear();
        assert!(buf.is_empty());
        buf.push(Point::ORIGIN);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn buffer_equality_and_collect() {
        let pts = scatter(6, 3);
        let a = PointBuffer::from_points(&pts);
        let b: PointBuffer = pts.iter().copied().collect();
        assert_eq!(a, b);
        let c = PointBuffer::from_points(&scatter(6, 4));
        assert_ne!(a, c);
    }

    #[test]
    fn sum_distances_matches_reference_across_sizes() {
        for n in [0, 1, 3, 4, 5, 8, 17, 64] {
            let pts = scatter(n, n as u64 + 1);
            let buf = PointBuffer::from_points(&pts);
            let at = Point::new(0.3, -0.7);
            let batch = sum_distances(&buf, at);
            let scalar = reference::sum_distances(&pts, at);
            assert!(
                (batch - scalar).abs() <= 1e-12 * (1.0 + scalar.abs()),
                "n={n}: {batch} vs {scalar}"
            );
        }
    }

    #[test]
    fn weiszfeld_sums_match_reference() {
        for n in [1, 4, 7, 33] {
            let mut pts = scatter(n, 11 + n as u64);
            // Force coincident mass at the iterate.
            let at = pts[0];
            pts.push(at);
            let buf = PointBuffer::from_points(&pts);
            let batch = weiszfeld_sums(&buf, at, 1e-9);
            let scalar = reference::weiszfeld_sums(&pts, at, 1e-9);
            assert_eq!(batch.coincident, scalar.coincident);
            for (a, b) in [
                (batch.num_x, scalar.num_x),
                (batch.num_y, scalar.num_y),
                (batch.denom, scalar.denom),
                (batch.pull_x, scalar.pull_x),
                (batch.pull_y, scalar.pull_y),
            ] {
                assert!(
                    (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                    "n={n}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn weiszfeld_sums_target_and_pull_accessors() {
        let pts = scatter(9, 42);
        let buf = PointBuffer::from_points(&pts);
        let s = weiszfeld_sums(&buf, Point::ORIGIN, 1e-12);
        let t = s.target();
        assert!(t.x.is_finite() && t.y.is_finite());
        assert_eq!(s.pull(), Vec2::new(s.pull_x, s.pull_y));
    }

    #[test]
    fn centroid_and_max_dist2_match_reference() {
        for n in [1, 2, 4, 9, 31] {
            let pts = scatter(n, 5 + n as u64);
            let buf = PointBuffer::from_points(&pts);
            let c = centroid(&buf);
            let cr = reference::centroid(&pts);
            assert!(c.dist(cr) <= 1e-12 * (1.0 + cr.to_vec().norm()));
            let from = Point::new(1.0, 2.0);
            assert_eq!(max_dist2(&buf, from), reference::max_dist2(&pts, from));
        }
    }

    #[test]
    fn masked_max_dist2_matches_reference_bitwise() {
        for n in [0, 1, 3, 4, 5, 9, 17, 40] {
            let pts = scatter(n, 31 + n as u64);
            let mask: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
            let buf = PointBuffer::from_points(&pts);
            let from = Point::new(-0.4, 1.3);
            let batch = masked_max_dist2(buf.xs(), buf.ys(), &mask, from);
            let scalar = reference::masked_max_dist2(&pts, &mask, from);
            // Same per-element `dx·dx + dy·dy` and a max-reduction (order
            // free): bitwise identical.
            assert!(
                batch == scalar || (batch.is_infinite() && scalar.is_infinite()),
                "n={n}: {batch} vs {scalar}"
            );
        }
        // All-masked-out yields the neutral element.
        let pts = scatter(6, 77);
        let buf = PointBuffer::from_points(&pts);
        assert_eq!(
            masked_max_dist2(buf.xs(), buf.ys(), &[false; 6], Point::ORIGIN),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn radial_pull_matches_reference() {
        let mut pts = scatter(20, 99);
        pts.push(Point::new(0.0, 0.0));
        pts.push(Point::new(0.05, 0.0)); // inside the zone below
        let buf = PointBuffer::from_points(&pts);
        let (pull, inside) = radial_pull(&buf, Point::ORIGIN, 0.1);
        let (pull_r, inside_r) = reference::radial_pull(&pts, Point::ORIGIN, 0.1);
        assert_eq!(inside, inside_r);
        assert!((pull - pull_r).norm() <= 1e-12 * (1.0 + pull_r.norm()));
    }

    #[test]
    fn angle_keys_match_reference_bitwise() {
        let pts = scatter(25, 123);
        let buf = PointBuffer::from_points(&pts);
        let center = Point::new(0.5, 0.5);
        let (mut batch, mut scalar) = (Vec::new(), Vec::new());
        angle_keys_into(&buf, center, 0.4, &mut batch);
        reference::angle_keys_into(&pts, center, 0.4, &mut scalar);
        // Same filter, same per-element ops: bitwise identical.
        assert_eq!(batch, scalar);
    }

    /// A deterministic index subset of `0..n`, roughly every third index,
    /// plus the endpoints when present.
    fn subset(n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).filter(|i| i % 3 != 1).collect();
        if n > 0 && !idx.contains(&(n - 1)) {
            idx.push(n - 1);
        }
        idx
    }

    #[test]
    fn diff_indices_finds_bitwise_changes_only() {
        let before = scatter(12, 9);
        let mut after = before.clone();
        after[3] = Point::new(f64::from_bits(after[3].x.to_bits() ^ 1), after[3].y);
        after[7] = Point::new(after[7].x, -after[7].y);
        let mut got = Vec::new();
        diff_indices(&before, &after, &mut got);
        assert_eq!(got, vec![3, 7]);
        let mut scalar = Vec::new();
        reference::diff_indices(&before, &after, &mut scalar);
        assert_eq!(got, scalar);
        // Identical slices: empty diff, buffer reused.
        diff_indices(&before, &before, &mut got);
        assert!(got.is_empty());
        // -0.0 differs from 0.0 bitwise and must be reported.
        let a = [Point::new(0.0, 1.0)];
        let b = [Point::new(-0.0, 1.0)];
        diff_indices(&a, &b, &mut got);
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn weiszfeld_sums_gather_matches_reference() {
        for n in [0usize, 1, 4, 7, 19, 40] {
            let mut pts = scatter(n, 51 + n as u64);
            if n > 0 {
                let at = pts[0];
                pts.push(at); // coincident mass inside the subset
            }
            let idx = subset(pts.len());
            let buf = PointBuffer::from_points(&pts);
            let at = if pts.is_empty() {
                Point::ORIGIN
            } else {
                pts[0]
            };
            let batch = weiszfeld_sums_gather(&buf, &idx, at, 1e-9);
            let scalar = reference::weiszfeld_sums_gather(&pts, &idx, at, 1e-9);
            assert_eq!(batch.coincident, scalar.coincident, "n={n}");
            for (a, b) in [
                (batch.num_x, scalar.num_x),
                (batch.num_y, scalar.num_y),
                (batch.denom, scalar.denom),
                (batch.pull_x, scalar.pull_x),
                (batch.pull_y, scalar.pull_y),
            ] {
                assert!(
                    (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                    "n={n}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn max_dist2_gather_matches_reference_and_full_scan() {
        for n in [1usize, 2, 5, 9, 33] {
            let pts = scatter(n, 61 + n as u64);
            let buf = PointBuffer::from_points(&pts);
            let from = Point::new(0.2, -0.9);
            let idx = subset(n);
            assert_eq!(
                max_dist2_gather(&buf, &idx, from),
                reference::max_dist2_gather(&pts, &idx, from),
                "n={n}"
            );
            // The all-indices gather is the dense scan.
            let all: Vec<usize> = (0..n).collect();
            assert_eq!(max_dist2_gather(&buf, &all, from), max_dist2(&buf, from));
        }
    }

    #[test]
    fn angle_keys_gather_matches_reference_bitwise() {
        let pts = scatter(25, 321);
        let buf = PointBuffer::from_points(&pts);
        let center = Point::new(0.5, 0.5);
        let idx = subset(pts.len());
        let (mut batch, mut scalar) = (Vec::new(), Vec::new());
        angle_keys_gather_into(&buf, &idx, center, 0.4, &mut batch);
        reference::angle_keys_gather_into(&pts, &idx, center, 0.4, &mut scalar);
        assert_eq!(batch, scalar);
        // The all-indices gather is the dense kernel, bitwise.
        let all: Vec<usize> = (0..pts.len()).collect();
        let mut dense = Vec::new();
        angle_keys_into(&buf, center, 0.4, &mut dense);
        angle_keys_gather_into(&buf, &all, center, 0.4, &mut batch);
        assert_eq!(batch, dense);
    }

    #[test]
    #[should_panic(expected = "unequal length")]
    fn mismatched_slices_panic() {
        let _ = sum_distances_slices(&[0.0, 1.0], &[0.0], Point::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn centroid_of_empty_buffer_panics() {
        let _ = centroid(&PointBuffer::new());
    }
}
