//! Robust-enough 2D computational geometry for mobile-robot gathering.
//!
//! This crate is the geometric substrate of the reproduction of *"Gathering
//! of Mobile Robots Tolerating Multiple Crash Faults"* (Bouzid, Das, Tixeuil;
//! ICDCS 2013). Everything the paper's definitions rely on lives here:
//!
//! * [`Point`] / [`Vec2`] — positions and displacements on the plane;
//! * [`Tol`] — the centralised tolerance policy used to emulate exact real
//!   arithmetic with `f64`;
//! * [`predicates`] — orientation / collinearity / betweenness tests with a
//!   floating-point error filter;
//! * [`exact`] — expansion-arithmetic exact orientation signs, resolving
//!   the filter's uncertain band;
//! * [`angle`] — clockwise angles (the paper assumes *chirality*: all robots
//!   agree on the clockwise direction);
//! * [`mod@line`] — lines, rays (the paper's half-lines `HF(u, v)`), segments;
//! * [`hull`] — convex hulls (`CH(Q)` in the paper);
//! * [`sec`] — smallest enclosing circles (`sec(C)` in the paper);
//! * [`soa`] — structure-of-arrays point storage ([`PointBuffer`]) and the
//!   chunked batch kernels the hot loops compile down to;
//! * [`weber`] — Weber points: the exact medians of collinear configurations
//!   and the Weiszfeld iteration for general position;
//! * [`transform`] — orientation-preserving similarity transforms, used by
//!   the simulator to implement per-robot local coordinate frames.
//!
//! # Example
//!
//! ```
//! use gather_geom::{Point, Tol, sec::smallest_enclosing_circle};
//!
//! let pts = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 1.0)];
//! let circle = smallest_enclosing_circle(&pts);
//! let tol = Tol::default();
//! for p in &pts {
//!     assert!(circle.contains(*p, tol));
//! }
//! ```

pub mod angle;
pub mod exact;
pub mod hull;
pub mod line;
pub mod point;
pub mod predicates;
pub mod sec;
pub mod soa;
pub mod tol;
pub mod transform;
pub mod weber;

pub use angle::{ccw_angle, cw_angle, polar_angle, Angle};
pub use hull::{convex_hull, convex_hull_into, convex_hull_soa, hull_contains};
pub use line::{Line, Ray, Segment};
pub use point::{centroid, Point, Vec2};
pub use predicates::{are_collinear, is_between, orient2d, Orientation};
pub use sec::{smallest_enclosing_circle, smallest_enclosing_circle_soa, Circle};
pub use soa::{PointBuffer, WeiszfeldSums};
pub use tol::Tol;
pub use transform::Similarity;
pub use weber::{
    weber_objective, weber_point_weiszfeld, weber_point_weiszfeld_from, weiszfeld_iterations,
    weiszfeld_nanos, WeberResult,
};
