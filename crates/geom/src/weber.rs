//! Weber points (Definition 1 of the paper).
//!
//! The Weber point of a configuration `C` minimises `Σ_{p ∈ C} |x, p|`.
//! Facts used by the paper and exposed here:
//!
//! * non-linear configurations have a **unique** Weber point;
//! * linear configurations have the interval of **medians** as their Weber
//!   point set ([`collinear_weber_interval`]), which is a single point iff
//!   the median is unique — this distinguishes classes `L1W` and `L2W`;
//! * the Weber point is **invariant under straight moves toward it**
//!   (Lemma 3.2), which is why it is a crash-tolerant gathering target;
//! * no finite algorithm computes it for arbitrary configurations, but the
//!   damped Weiszfeld iteration ([`weber_point_weiszfeld`]) converges to it
//!   numerically; the paper's contribution is an *exact* computation for
//!   quasi-regular configurations (implemented in `gather-config`), for
//!   which the numeric solver doubles as a cross-check.

use crate::line::Line;
use crate::point::Point;
use crate::predicates::are_collinear;
use crate::soa::{self, PointBuffer};
use crate::tol::Tol;

/// Sum of Euclidean distances from `x` to every point of `points`
/// (the Weber objective).
///
/// # Example
///
/// ```
/// use gather_geom::{weber_objective, Point};
/// let pts = [Point::new(-1.0, 0.0), Point::new(1.0, 0.0)];
/// assert_eq!(weber_objective(Point::ORIGIN, &pts), 2.0);
/// assert!(weber_objective(Point::new(0.0, 1.0), &pts) > 2.0);
/// ```
pub fn weber_objective(x: Point, points: &[Point]) -> f64 {
    points.iter().map(|p| x.dist(*p)).sum()
}

/// Outcome of the Weiszfeld iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeberResult {
    /// The computed (approximate) Weber point.
    pub point: Point,
    /// The Weber objective at `point`.
    pub objective: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the iteration met its convergence threshold.
    pub converged: bool,
}

/// Maximum Weiszfeld iterations before giving up.
const MAX_ITERS: usize = 10_000;

thread_local! {
    /// Total Weiszfeld iterations performed on this thread.
    static WEISZFELD_ITERS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Reusable per-thread solver state: the SoA transpose of the input and the
/// distinct-location table. Taken at the top of [`weiszfeld_solve`] and put
/// back on exit, so repeated solves on one thread (every round of a
/// simulation run, every sweep item on a pool worker) allocate nothing once
/// the buffers have grown to the configuration size.
#[derive(Default)]
struct SolverScratch {
    buf: PointBuffer,
    distinct: Vec<(Point, usize)>,
}

thread_local! {
    static SOLVER_SCRATCH: std::cell::RefCell<SolverScratch> = Default::default();
}

/// Total Weiszfeld iterations performed on the current thread since it
/// started. Monotone; callers diff two readings to attribute solver work to
/// a code region (the simulation engine reports the per-round delta in its
/// trace, making the shared-analysis cache's savings observable).
pub fn weiszfeld_iterations() -> u64 {
    WEISZFELD_ITERS.with(|c| c.get())
}

thread_local! {
    /// Total nanoseconds this thread has spent inside the Weiszfeld solver.
    static WEISZFELD_NANOS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total wall-clock nanoseconds the current thread has spent inside the
/// Weiszfeld solver since it started. Monotone, like
/// [`weiszfeld_iterations`]; callers diff two readings to attribute solver
/// time to a code region — the engine's phase spans carve the per-round
/// delta out of the classification phase. The counter is always on (the
/// solver runs at most a few times per round, so the two clock reads per
/// solve are noise next to the iteration itself).
pub fn weiszfeld_nanos() -> u64 {
    WEISZFELD_NANOS.with(|c| c.get())
}

/// Numerically computes the Weber point of `points` with the Weiszfeld
/// iteration, using the Vardi–Zhang rule to step off input points (plain
/// Weiszfeld is undefined when an iterate lands exactly on an input point,
/// which happens routinely for symmetric robot configurations whose Weber
/// point is an occupied centre).
///
/// `eps` is the convergence threshold on the step length, typically
/// `tol.abs`. For collinear inputs the Weber point may not be unique; this
/// function then returns the midpoint of the median interval (the canonical
/// choice used throughout the suite).
///
/// # Panics
///
/// Panics if `points` is empty.
///
/// # Example
///
/// ```
/// use gather_geom::{weber_point_weiszfeld, Point, Tol};
/// // Weber point of 3 vertices of an equilateral triangle = its centre.
/// let pts: Vec<Point> = (0..3).map(|k| {
///     let th = std::f64::consts::TAU * k as f64 / 3.0;
///     Point::new(th.cos(), th.sin())
/// }).collect();
/// let w = weber_point_weiszfeld(&pts, Tol::default());
/// assert!(w.point.dist(Point::ORIGIN) < 1e-7);
/// assert!(w.converged);
/// ```
pub fn weber_point_weiszfeld(points: &[Point], tol: Tol) -> WeberResult {
    weiszfeld_solve(points, tol, None)
}

/// [`weber_point_weiszfeld`] warm-started from `initial` instead of the
/// cold-start scan over all input points and the centroid.
///
/// The intended caller holds the Weber point of the *previous* round's
/// configuration: by Lemma 3.2 the Weber point is invariant while robots
/// move straight toward it, so the previous iterate is a near-perfect (often
/// exact) initial guess and the iteration converges in a handful of steps.
/// Correctness does not depend on the quality of `initial` — the Weber
/// objective is convex, so the damped iteration converges to the same
/// optimum from any finite starting point; a non-finite `initial` falls
/// back to the cold start. Degenerate inputs (single point, collinear) take
/// the same exact short-circuits as the cold entry point.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn weber_point_weiszfeld_from(initial: Point, points: &[Point], tol: Tol) -> WeberResult {
    weiszfeld_solve(points, tol, Some(initial))
}

/// Timing shim over [`weiszfeld_solve_inner`]: charges the solve's wall
/// time to this thread's [`weiszfeld_nanos`] counter.
fn weiszfeld_solve(points: &[Point], tol: Tol, warm: Option<Point>) -> WeberResult {
    let started = std::time::Instant::now();
    let result = weiszfeld_solve_inner(points, tol, warm);
    WEISZFELD_NANOS.with(|c| c.set(c.get().saturating_add(started.elapsed().as_nanos() as u64)));
    result
}

fn weiszfeld_solve_inner(points: &[Point], tol: Tol, warm: Option<Point>) -> WeberResult {
    assert!(!points.is_empty(), "Weber point of an empty configuration");
    let eps = tol.abs.max(1e-12);

    if points.len() == 1 {
        return WeberResult {
            point: points[0],
            objective: 0.0,
            iterations: 0,
            converged: true,
        };
    }

    if are_collinear(points, tol) {
        let (lo, hi) = collinear_weber_interval(points, tol)
            .expect("collinear set must have a median interval");
        let point = lo.midpoint(hi);
        return WeberResult {
            point,
            objective: weber_objective(point, points),
            iterations: 0,
            converged: true,
        };
    }

    // All remaining work runs over the per-thread SoA scratch: transpose
    // once, then every distance scan below is a batch kernel.
    let mut scratch = SOLVER_SCRATCH.with(|c| std::mem::take(&mut *c.borrow_mut()));
    scratch.buf.copy_from_points(points);
    // Distinct input locations (bitwise groups) with multiplicities for the
    // vertex-capture test below.
    scratch.distinct.clear();
    for p in points {
        match scratch.distinct.iter_mut().find(|(q, _)| q == p) {
            Some((_, m)) => *m += 1,
            None => scratch.distinct.push((*p, 1)),
        }
    }
    let buf = &scratch.buf;
    let distinct = &scratch.distinct;

    let centroid = soa::centroid(buf);
    // Warm path: trust the caller's iterate (Lemma 3.2 makes the previous
    // round's Weber point exact while robots move toward it). Cold path:
    // start from the best input point or the centroid, whichever is better.
    let mut x = match warm {
        Some(p) if p.x.is_finite() && p.y.is_finite() => p,
        _ => {
            let mut best = buf.get(0);
            let mut best_obj = soa::sum_distances(buf, best);
            for i in 1..buf.len() {
                let p = buf.get(i);
                let obj = soa::sum_distances(buf, p);
                if obj < best_obj {
                    best = p;
                    best_obj = obj;
                }
            }
            let centroid_obj = soa::sum_distances(buf, centroid);
            if centroid_obj < best_obj {
                best = centroid;
            }
            best
        }
    };

    let extent = soa::max_dist2(buf, centroid).1.sqrt().max(1e-12);
    // If the iterate hovers near an input point, test that point's exact
    // optimality (the subgradient condition |Σ unit vectors| ≤ mult) and
    // snap to it — Weiszfeld converges sublinearly exactly in this regime,
    // and the snap also removes the residual numeric offset.
    let capture = |x: Point| -> Option<Point> {
        let (p, m) = distinct
            .iter()
            .min_by(|(a, _), (b, _)| x.dist2(*a).total_cmp(&x.dist2(*b)))
            .copied()?;
        if x.dist(p) > 1e-3 * extent {
            return None;
        }
        // With threshold 0 the kernel's "far" set is exactly the points not
        // bitwise-equal to `p`, so its pull is the subgradient at `p`.
        let pull = soa::weiszfeld_sums(buf, p, 0.0).pull();
        (pull.norm() <= m as f64 + 1e-9).then_some(p)
    };

    let mut iterations = 0;
    let mut converged = false;
    while iterations < MAX_ITERS {
        iterations += 1;
        // The first-iteration check lets a warm start that lands next to an
        // optimal occupied point snap immediately instead of grinding
        // through Weiszfeld's sublinear vertex regime until iteration 16.
        if iterations == 1 || iterations % 16 == 0 {
            if let Some(p) = capture(x) {
                x = p;
                converged = true;
                break;
            }
        }
        // T(x) = Σ p_i / d_i / Σ 1/d_i over points not coincident with x;
        // Vardi–Zhang correction accounts for coincident points' weight.
        let sums = soa::weiszfeld_sums(buf, x, eps);
        if sums.denom == 0.0 {
            // All points coincide with x: x is the Weber point.
            converged = true;
            break;
        }
        let t = sums.target();
        let next = if sums.coincident == 0 {
            t
        } else {
            // Vardi–Zhang: if the pull of the far points does not exceed the
            // weight of the coincident ones, x is optimal; otherwise step
            // toward T with damping 1 - m/|R|.
            let r = sums.pull().norm();
            let m = sums.coincident as f64;
            if r <= m {
                converged = true;
                break;
            }
            let lambda = (1.0 - m / r).min(1.0);
            Point::new(x.x + (t.x - x.x) * lambda, x.y + (t.y - x.y) * lambda)
        };
        let step = x.dist(next);
        x = next;
        if step <= eps {
            // Final polish: if we stopped next to an input point that is
            // itself optimal, land on it exactly.
            if let Some(p) = capture(x) {
                x = p;
            }
            converged = true;
            break;
        }
    }

    let objective = soa::sum_distances(buf, x);
    SOLVER_SCRATCH.with(|c| *c.borrow_mut() = scratch);
    WEISZFELD_ITERS.with(|c| c.set(c.get() + iterations as u64));
    WeberResult {
        point: x,
        objective,
        iterations,
        converged,
    }
}

/// The Weber point set of a **collinear** configuration: the closed interval
/// `[min Med(C), max Med(C)]` of its medians along the line (with
/// multiplicity).
///
/// Returns `None` if the points are not collinear (within tolerance).
/// For an odd number of points the interval is degenerate (a single point);
/// for an even number it is degenerate iff the two middle points coincide.
///
/// # Example
///
/// ```
/// use gather_geom::{weber::collinear_weber_interval, Point, Tol};
/// let pts = [0.0, 1.0, 5.0, 9.0].map(|x| Point::new(x, 0.0));
/// let (lo, hi) = collinear_weber_interval(&pts, Tol::default()).unwrap();
/// assert_eq!((lo.x, hi.x), (1.0, 5.0)); // even count: middle two points
/// ```
pub fn collinear_weber_interval(points: &[Point], tol: Tol) -> Option<(Point, Point)> {
    if points.is_empty() || !are_collinear(points, tol) {
        return None;
    }
    Some(median_interval_on_line(points, tol))
}

/// The median interval of `points` projected onto their principal line
/// (the line through the two mutually farthest points), without checking
/// collinearity.
///
/// For genuinely collinear inputs this equals the Weber interval of
/// [`collinear_weber_interval`]. Callers that have already established
/// linearity with their own tolerance policy (e.g. on de-duplicated
/// positions) use this to avoid a second, subtly different collinearity
/// test on the raw multiset.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn median_interval_on_line(points: &[Point], tol: Tol) -> (Point, Point) {
    assert!(!points.is_empty(), "median of an empty configuration");
    let first = points[0];
    let far = points
        .iter()
        .copied()
        .max_by(|a, b| first.dist2(*a).total_cmp(&first.dist2(*b)))
        .expect("non-empty");
    if first.dist(far) <= tol.abs {
        return (first, first); // all points coincide (within tolerance)
    }
    let line = Line::through(first, far);
    let mut ts: Vec<f64> = points.iter().map(|p| line.project(*p)).collect();
    ts.sort_by(f64::total_cmp);
    let n = ts.len();
    let (lo, hi) = if n % 2 == 1 {
        let m = ts[n / 2];
        (m, m)
    } else {
        (ts[n / 2 - 1], ts[n / 2])
    };
    (line.at(lo), line.at(hi))
}

/// Does a collinear configuration have a **unique** Weber point?
///
/// This is the `L1W` vs `L2W` distinction of the paper. Returns `None` if
/// the points are not collinear; otherwise `Some(point)` when the median is
/// unique and `Some` is collapsed accordingly — see
/// [`collinear_weber_interval`] for the general interval.
pub fn unique_collinear_weber_point(points: &[Point], tol: Tol) -> Option<Point> {
    let (lo, hi) = collinear_weber_interval(points, tol)?;
    if lo.dist(hi) <= tol.snap {
        Some(lo.midpoint(hi))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Vec2;
    use std::f64::consts::TAU;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn objective_of_two_points_is_their_distance_between_them() {
        let pts = [Point::new(-3.0, 0.0), Point::new(3.0, 0.0)];
        // Anywhere on the segment achieves the minimum = 6.
        assert_eq!(weber_objective(Point::ORIGIN, &pts), 6.0);
        assert_eq!(weber_objective(Point::new(1.0, 0.0), &pts), 6.0);
        assert!(weber_objective(Point::new(0.0, 2.0), &pts) > 6.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn weiszfeld_empty_panics() {
        let _ = weber_point_weiszfeld(&[], t());
    }

    #[test]
    fn weiszfeld_single_and_coincident_points() {
        let p = Point::new(2.0, 3.0);
        let r = weber_point_weiszfeld(&[p], t());
        assert_eq!(r.point, p);
        let r2 = weber_point_weiszfeld(&[p, p, p], t());
        assert!(r2.point.dist(p) < 1e-9);
        assert!(r2.converged);
    }

    #[test]
    fn weiszfeld_equilateral_triangle() {
        let pts: Vec<Point> = (0..3)
            .map(|k| {
                let th = TAU * k as f64 / 3.0 + 0.1;
                Point::new(5.0 + 2.0 * th.cos(), -3.0 + 2.0 * th.sin())
            })
            .collect();
        let r = weber_point_weiszfeld(&pts, t());
        assert!(r.point.dist(Point::new(5.0, -3.0)) < 1e-6);
        assert!(r.converged);
    }

    #[test]
    fn weiszfeld_square_center() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        let r = weber_point_weiszfeld(&pts, t());
        assert!(r.point.dist(Point::new(2.0, 2.0)) < 1e-6);
    }

    #[test]
    fn weiszfeld_handles_weber_point_on_an_input_point() {
        // A point of multiplicity 3 at the centre of a triangle dominates:
        // the Weber point is that occupied centre (Vardi–Zhang case).
        let mut pts: Vec<Point> = (0..3)
            .map(|k| {
                let th = TAU * k as f64 / 3.0;
                Point::new(th.cos(), th.sin())
            })
            .collect();
        for _ in 0..3 {
            pts.push(Point::ORIGIN);
        }
        let r = weber_point_weiszfeld(&pts, t());
        assert!(r.point.dist(Point::ORIGIN) < 1e-7, "got {}", r.point);
        assert!(r.converged);
    }

    #[test]
    fn weiszfeld_is_no_worse_than_any_input_point() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(7.0, 1.0),
            Point::new(3.0, 9.0),
            Point::new(-2.0, 4.0),
            Point::new(5.0, 5.0),
        ];
        let r = weber_point_weiszfeld(&pts, t());
        for p in &pts {
            assert!(r.objective <= weber_objective(*p, &pts) + 1e-9);
        }
    }

    #[test]
    fn weiszfeld_first_order_condition() {
        // At the optimum, the unit-vector pull sums to ~0 (unoccupied case).
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(8.0, 1.0),
            Point::new(4.0, 7.0),
            Point::new(1.0, 5.0),
        ];
        let r = weber_point_weiszfeld(&pts, t());
        let mut pull = Vec2::ZERO;
        for p in &pts {
            pull += (*p - r.point).normalized();
        }
        assert!(pull.norm() < 1e-5, "residual pull {}", pull.norm());
    }

    #[test]
    fn collinear_interval_odd_is_median_point() {
        let pts = [0.0, 2.0, 10.0].map(|x| Point::new(x, x)); // along y=x
        let (lo, hi) = collinear_weber_interval(&pts, t()).unwrap();
        assert!(lo.dist(hi) < 1e-12);
        assert!(lo.dist(Point::new(2.0, 2.0)) < 1e-12);
    }

    #[test]
    fn collinear_interval_even_distinct_medians() {
        let pts = [0.0, 2.0, 6.0, 11.0].map(|x| Point::new(x, 0.0));
        let (lo, hi) = collinear_weber_interval(&pts, t()).unwrap();
        assert_eq!((lo.x, hi.x), (2.0, 6.0));
        assert!(unique_collinear_weber_point(&pts, t()).is_none());
    }

    #[test]
    fn collinear_interval_even_with_multiplicity_collapses() {
        // Middle two positions coincide => unique Weber point (class L1W).
        let pts = [0.0, 3.0, 3.0, 11.0].map(|x| Point::new(x, 0.0));
        let w = unique_collinear_weber_point(&pts, t()).unwrap();
        assert!(w.dist(Point::new(3.0, 0.0)) < 1e-12);
    }

    #[test]
    fn collinear_interval_respects_multiplicity() {
        // Multiplicity shifts the median: {0 (x4), 10} has median 0.
        let pts = [0.0, 0.0, 0.0, 0.0, 10.0].map(|x| Point::new(x, 0.0));
        let (lo, hi) = collinear_weber_interval(&pts, t()).unwrap();
        assert!(lo.dist(hi) < 1e-12);
        assert!(lo.dist(Point::ORIGIN) < 1e-12);
    }

    #[test]
    fn non_collinear_has_no_interval() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        assert!(collinear_weber_interval(&pts, t()).is_none());
        assert!(unique_collinear_weber_point(&pts, t()).is_none());
    }

    #[test]
    fn weiszfeld_on_collinear_input_returns_median() {
        let pts = [0.0, 1.0, 2.0, 3.0, 50.0].map(|x| Point::new(x, 0.0));
        let r = weber_point_weiszfeld(&pts, t());
        assert!(r.point.dist(Point::new(2.0, 0.0)) < 1e-9);
    }

    #[test]
    fn warm_start_agrees_with_cold_start() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(7.0, 1.0),
            Point::new(3.0, 9.0),
            Point::new(-2.0, 4.0),
            Point::new(5.0, 5.0),
        ];
        let cold = weber_point_weiszfeld(&pts, t());
        for start in [
            cold.point,
            Point::new(100.0, -50.0),
            Point::ORIGIN,
            Point::new(3.0, 9.0), // an input point
        ] {
            let warm = weber_point_weiszfeld_from(start, &pts, t());
            assert!(
                warm.point.dist(cold.point) < 1e-6,
                "warm start from {start} landed at {} vs cold {}",
                warm.point,
                cold.point
            );
            assert!(warm.converged);
        }
    }

    #[test]
    fn warm_start_from_previous_weber_point_is_cheap() {
        // Lemma 3.2 in action: after moving robots toward the Weber point,
        // restarting the solver from the old iterate converges in far fewer
        // iterations than a cold start does.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(8.0, 1.0),
            Point::new(4.0, 7.0),
            Point::new(1.0, 5.0),
            Point::new(6.0, 6.0),
        ];
        let w = weber_point_weiszfeld(&pts, t());
        let moved: Vec<Point> = pts.iter().map(|p| p.lerp(w.point, 0.4)).collect();
        let cold = weber_point_weiszfeld(&moved, t());
        let warm = weber_point_weiszfeld_from(w.point, &moved, t());
        assert!(warm.point.dist(cold.point) < 1e-6);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} > cold {} iterations",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn warm_start_with_non_finite_initial_falls_back_to_cold() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        let r = weber_point_weiszfeld_from(Point::new(f64::NAN, 0.0), &pts, t());
        assert!(r.point.dist(Point::new(2.0, 2.0)) < 1e-6);
    }

    #[test]
    fn warm_start_degenerate_inputs_match_cold_shortcuts() {
        let p = Point::new(2.0, 3.0);
        let far = Point::new(50.0, 50.0);
        assert_eq!(weber_point_weiszfeld_from(far, &[p], t()).point, p);
        let line = [0.0, 1.0, 2.0, 3.0, 50.0].map(|x| Point::new(x, 0.0));
        let r = weber_point_weiszfeld_from(far, &line, t());
        assert!(r.point.dist(Point::new(2.0, 0.0)) < 1e-9);
    }

    #[test]
    fn weber_point_invariance_under_movement_toward_it() {
        // Lemma 3.2, checked numerically: move each point halfway toward
        // the Weber point; the Weber point stays put.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(8.0, 1.0),
            Point::new(4.0, 7.0),
            Point::new(1.0, 5.0),
            Point::new(6.0, 6.0),
        ];
        let w = weber_point_weiszfeld(&pts, t()).point;
        let moved: Vec<Point> = pts.iter().map(|p| p.lerp(w, 0.5)).collect();
        let w2 = weber_point_weiszfeld(&moved, t()).point;
        assert!(w.dist(w2) < 1e-5, "Weber point drifted {} -> {}", w, w2);
    }
}
