//! Centralised tolerance policy.
//!
//! The paper reasons over exact real arithmetic; this reproduction runs on
//! `f64`. Every approximate comparison in the workspace goes through a single
//! [`Tol`] value so that the precision/robustness trade-off is explicit,
//! configurable, and measurable (experiment T4 sweeps it).

use std::fmt;

/// Tolerance policy for approximate geometric comparisons.
///
/// Two scalars `a` and `b` are considered equal when
/// `|a - b| <= abs + rel * max(|a|, |b|)`.
///
/// `snap` is the radius used by the simulator to canonicalise robot
/// positions: points closer than `snap` are considered the *same location*
/// for the purpose of strong multiplicity detection. It should be
/// comfortably larger than the accumulated floating-point noise of one
/// round's computations (frame round-trips, angle arithmetic) and
/// comfortably smaller than any inter-robot distance produced by the
/// workload generators.
///
/// # Example
///
/// ```
/// use gather_geom::Tol;
/// let tol = Tol::default();
/// assert!(tol.eq(1.0, 1.0 + 1e-12));
/// assert!(!tol.eq(1.0, 1.001));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tol {
    /// Absolute epsilon for scalar comparisons.
    pub abs: f64,
    /// Relative epsilon for scalar comparisons.
    pub rel: f64,
    /// Position-canonicalisation radius (strong multiplicity detection).
    pub snap: f64,
}

impl Default for Tol {
    /// The default policy used across the whole test and experiment suite:
    /// `abs = 1e-9`, `rel = 1e-9`, `snap = 1e-6`.
    fn default() -> Self {
        Tol {
            abs: 1e-9,
            rel: 1e-9,
            snap: 1e-6,
        }
    }
}

impl fmt::Display for Tol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tol(abs={:.1e}, rel={:.1e}, snap={:.1e})",
            self.abs, self.rel, self.snap
        )
    }
}

impl Tol {
    /// Creates a tolerance with the given absolute/relative epsilons and
    /// snap radius.
    pub fn new(abs: f64, rel: f64, snap: f64) -> Self {
        Tol { abs, rel, snap }
    }

    /// A stricter policy (useful in tests on exactly-constructed inputs).
    pub fn strict() -> Self {
        Tol {
            abs: 1e-12,
            rel: 1e-12,
            snap: 1e-9,
        }
    }

    /// A looser policy, for heavily perturbed inputs.
    pub fn loose() -> Self {
        Tol {
            abs: 1e-6,
            rel: 1e-6,
            snap: 1e-4,
        }
    }

    /// Approximate scalar equality.
    #[inline]
    pub fn eq(self, a: f64, b: f64) -> bool {
        let diff = (a - b).abs();
        diff <= self.abs + self.rel * a.abs().max(b.abs())
    }

    /// Approximate `a < b` (strictly less, beyond tolerance).
    #[inline]
    pub fn lt(self, a: f64, b: f64) -> bool {
        a < b && !self.eq(a, b)
    }

    /// Approximate `a <= b` (less, or equal within tolerance).
    #[inline]
    pub fn le(self, a: f64, b: f64) -> bool {
        a <= b || self.eq(a, b)
    }

    /// Approximate `a > b` (strictly greater, beyond tolerance).
    #[inline]
    pub fn gt(self, a: f64, b: f64) -> bool {
        self.lt(b, a)
    }

    /// Approximate `a >= b`.
    #[inline]
    pub fn ge(self, a: f64, b: f64) -> bool {
        self.le(b, a)
    }

    /// Is `a` approximately zero?
    #[inline]
    pub fn is_zero(self, a: f64) -> bool {
        a.abs() <= self.abs
    }

    /// Approximate equality of angles in radians, treating values that
    /// differ by a multiple of `2π` as equal (so `0` and `2π` compare equal,
    /// as do `-π` and `π`).
    #[inline]
    pub fn angle_eq(self, a: f64, b: f64) -> bool {
        use std::f64::consts::TAU;
        let mut d = (a - b) % TAU;
        if d > TAU / 2.0 {
            d -= TAU;
        } else if d < -TAU / 2.0 {
            d += TAU;
        }
        d.abs() <= self.abs.max(1e-9)
    }

    /// Total-order comparison of scalars under this tolerance: returns
    /// `Equal` when [`Tol::eq`] holds, otherwise the exact ordering.
    #[inline]
    pub fn cmp(self, a: f64, b: f64) -> std::cmp::Ordering {
        if self.eq(a, b) {
            std::cmp::Ordering::Equal
        } else if a < b {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn default_tolerance_accepts_tiny_noise() {
        let t = Tol::default();
        assert!(t.eq(1.0, 1.0 + 1e-12));
        assert!(t.eq(0.0, 1e-10));
        assert!(t.eq(1e9, 1e9 + 0.5)); // relative part dominates
    }

    #[test]
    fn default_tolerance_rejects_real_differences() {
        let t = Tol::default();
        assert!(!t.eq(1.0, 1.0001));
        assert!(!t.eq(0.0, 1e-6));
    }

    #[test]
    fn strict_ordering_helpers() {
        let t = Tol::default();
        assert!(t.lt(1.0, 2.0));
        assert!(!t.lt(1.0, 1.0 + 1e-12));
        assert!(t.le(1.0, 1.0 + 1e-12));
        assert!(t.gt(2.0, 1.0));
        assert!(t.ge(1.0 + 1e-12, 1.0));
    }

    #[test]
    fn zero_check() {
        let t = Tol::default();
        assert!(t.is_zero(0.0));
        assert!(t.is_zero(1e-12));
        assert!(!t.is_zero(1e-3));
    }

    #[test]
    fn angle_equality_wraps() {
        let t = Tol::default();
        assert!(t.angle_eq(0.0, TAU));
        assert!(t.angle_eq(-PI, PI));
        assert!(t.angle_eq(0.1, 0.1 + TAU));
        assert!(!t.angle_eq(0.0, 0.1));
    }

    #[test]
    fn cmp_is_total_under_tolerance() {
        let t = Tol::default();
        assert_eq!(t.cmp(1.0, 1.0 + 1e-12), Ordering::Equal);
        assert_eq!(t.cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(t.cmp(2.0, 1.0), Ordering::Greater);
    }

    #[test]
    fn presets_are_ordered_by_strictness() {
        assert!(Tol::strict().abs < Tol::default().abs);
        assert!(Tol::default().abs < Tol::loose().abs);
        assert!(Tol::strict().snap < Tol::default().snap);
    }
}
