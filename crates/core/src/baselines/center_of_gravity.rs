//! Gravitational convergence (Cohen & Peleg, reference [9] of the paper).
//!
//! Every robot always moves toward the centre of gravity (centroid) of all
//! observed robots. This solves *convergence* — positions approach a common
//! point — but not *gathering*: the centroid moves whenever any subset of
//! robots moves, so no configuration short of an exact gathering is ever a
//! fixed target, and adversarial activation/stopping keeps correct robots
//! apart for unboundedly long. In the simulator it often ends "gathered"
//! only because positions eventually merge within the snap radius; the
//! experiments report its round counts against the paper's algorithm.

use gather_geom::{centroid, Point};
use gather_sim::prelude::{Algorithm, Snapshot};

/// The gravitational (centre-of-gravity) convergence rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct CenterOfGravity;

impl CenterOfGravity {
    /// The baseline algorithm (stateless).
    pub fn new() -> Self {
        CenterOfGravity
    }
}

impl Algorithm for CenterOfGravity {
    fn name(&self) -> &'static str {
        "center-of-gravity"
    }

    fn destination(&self, snap: &Snapshot) -> Point {
        centroid(snap.config().points())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::Configuration;

    #[test]
    fn always_targets_the_centroid() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 6.0),
        ];
        let alg = CenterOfGravity::new();
        let snap = Snapshot::new(Configuration::new(pts), Point::new(0.0, 0.0));
        assert_eq!(alg.destination(&snap), Point::new(2.0, 2.0));
    }

    #[test]
    fn centroid_weights_multiplicity() {
        let heavy = Point::new(0.0, 0.0);
        let pts = vec![heavy, heavy, heavy, Point::new(4.0, 0.0)];
        let alg = CenterOfGravity::new();
        let snap = Snapshot::new(Configuration::new(pts), heavy);
        assert_eq!(alg.destination(&snap), Point::new(1.0, 0.0));
    }

    #[test]
    fn gathered_point_is_fixed() {
        let p = Point::new(2.0, -1.0);
        let alg = CenterOfGravity::new();
        let snap = Snapshot::new(Configuration::new(vec![p; 4]), p);
        assert_eq!(alg.destination(&snap), p);
    }
}
