//! Grid-constrained gathering in the style of Bose et al.
//! (arXiv:1709.00877): robots live on the integer lattice ℤ² and move in
//! unit steps along the axes.
//!
//! The rule: rally at the unique point of maximal multiplicity if one
//! exists (strong multiplicity detection makes it visible), otherwise at
//! the configuration's centroid rounded to the lattice; each activation
//! takes **one axis-aligned unit step** from the robot's current cell
//! toward the rally cell, longer axis first (x on ties), landing exactly
//! on lattice points.
//!
//! **Frame contract**: unlike every other algorithm in this crate,
//! `GridMarch` is deliberately *not* equivariant under rotation/scale —
//! "one unit along the x-axis" only means something in a shared grid
//! frame. The grid model grants robots a common compass and unit length,
//! so the harness runs it under `FramePolicy::GlobalFrame` (the factory
//! and the sweep lanes pin this). Under the default random-frame policy
//! its behaviour is undefined by design.
//!
//! In the boundary-mapping experiments the interesting failure lives in
//! the *motion* model, not the rule: under rigid moves every hop lands on
//! ℤ² and the invariant checker stays quiet, while a non-rigid ASYNC
//! adversary can stop a robot mid-edge — an off-lattice *resting* position
//! that the grid model forbids (`gather-workloads`' checker flags it).

use gather_geom::{centroid, Point};
use gather_sim::prelude::{Algorithm, Snapshot};

/// The axis-step grid gathering rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridMarch;

impl GridMarch {
    /// The grid algorithm (stateless).
    pub fn new() -> Self {
        GridMarch
    }

    /// Nearest lattice point (ties round half-away-from-zero, `f64::round`).
    fn cell(p: Point) -> Point {
        Point::new(p.x.round(), p.y.round())
    }

    /// The rally cell: unique maximal multiplicity point if any, else the
    /// rounded centroid. Canonicalised snapshots make co-located robots
    /// bit-equal, so exact comparison counts multiplicities.
    fn rally(snap: &Snapshot) -> Point {
        let pts = snap.config().points();
        let mut best: Option<(Point, usize)> = None;
        let mut unique = true;
        for (i, &p) in pts.iter().enumerate() {
            if pts[..i].contains(&p) {
                continue; // counted when first seen
            }
            let mult = pts.iter().filter(|&&q| q == p).count();
            match &best {
                Some((_, m)) if mult < *m => {}
                Some((bp, m)) if mult == *m => {
                    if p != *bp {
                        unique = false;
                    }
                }
                _ => {
                    best = Some((p, mult));
                    unique = true;
                }
            }
        }
        match best {
            Some((p, mult)) if mult > 1 && unique => Self::cell(p),
            _ => Self::cell(centroid(pts)),
        }
    }
}

impl Algorithm for GridMarch {
    fn name(&self) -> &'static str {
        "grid-march"
    }

    fn destination(&self, snap: &Snapshot) -> Point {
        let me = snap.me();
        let from = Self::cell(me);
        let to = Self::rally(snap);
        let dx = to.x - from.x;
        let dy = to.y - from.y;
        if dx == 0.0 && dy == 0.0 {
            // Own cell is the rally cell: settle exactly onto the lattice
            // point (a no-op when already there).
            return to;
        }
        if dx.abs() >= dy.abs() {
            Point::new(from.x + dx.signum(), from.y)
        } else {
            Point::new(from.x, from.y + dy.signum())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::Configuration;

    fn snap_at(pts: Vec<Point>, me: Point) -> Snapshot<'static> {
        Snapshot::new(Configuration::new(pts), me)
    }

    #[test]
    fn steps_one_unit_along_the_longer_axis() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 2.0)];
        // Rally = rounded centroid (2.5, 1.0) → (3, 1). From (0,0): |dx|=3
        // beats |dy|=1, so one step in +x.
        let alg = GridMarch::new();
        assert_eq!(
            alg.destination(&snap_at(pts, Point::new(0.0, 0.0))),
            Point::new(1.0, 0.0)
        );
    }

    #[test]
    fn x_wins_axis_ties() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(4.0, 4.0)];
        let alg = GridMarch::new();
        assert_eq!(
            alg.destination(&snap_at(pts, Point::new(0.0, 0.0))),
            Point::new(1.0, 0.0)
        );
    }

    #[test]
    fn rallies_at_a_unique_multiplicity_point() {
        let heavy = Point::new(6.0, 0.0);
        let pts = vec![heavy, heavy, Point::new(0.0, 0.0), Point::new(0.0, 3.0)];
        let alg = GridMarch::new();
        // From (0,0): rally is the multiplicity point, |dx|=6 > |dy|=0.
        assert_eq!(
            alg.destination(&snap_at(pts, Point::new(0.0, 0.0))),
            Point::new(1.0, 0.0)
        );
    }

    #[test]
    fn tied_multiplicities_fall_back_to_the_centroid() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let pts = vec![a, a, b, b];
        let alg = GridMarch::new();
        // Two multiplicity-2 points: centroid (2,0) is the rally; one +x
        // step from a.
        assert_eq!(alg.destination(&snap_at(pts, a)), Point::new(1.0, 0.0));
    }

    #[test]
    fn at_the_rally_cell_settles_onto_the_lattice() {
        let p = Point::new(2.0, 2.0);
        let alg = GridMarch::new();
        assert_eq!(alg.destination(&snap_at(vec![p; 3], p)), p);
        // Mid-edge in the rally cell (e.g. after a non-rigid stop): the
        // destination is the cell's lattice point.
        let near = Point::new(2.4, 2.0);
        let pts = vec![near, p, p];
        assert_eq!(alg.destination(&snap_at(pts, near)), p);
    }
}
