//! The Weber-point oracle: the "if only we could compute it" baseline.
//!
//! Section I of the paper: *"If the Weber point can be computed, it is
//! simple to devise a robot protocol that solves gathering: all robots
//! simply move towards the Weber point. Unfortunately, the Weber point
//! cannot be computed by any finite algorithm for an arbitrary set of
//! points."* This baseline plays that impossible strategy with a numeric
//! stand-in (damped Weiszfeld iteration). It is crash-tolerant by the
//! invariance of the Weber point under moves toward it (Lemma 3.2) — up to
//! the numeric error of the iteration, which is exactly what the
//! experiments quantify: the paper's algorithm achieves the same effect
//! *exactly* on the classes where the Weber point is computable, and works
//! around it elsewhere.

use gather_geom::{weber_point_weiszfeld, Point, Tol};
use gather_sim::prelude::{Algorithm, Snapshot};

/// Move-to-the-(numeric)-Weber-point oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeberOracle {
    tol: Tol,
}

impl WeberOracle {
    /// The oracle with an explicit tolerance policy.
    pub fn new(tol: Tol) -> Self {
        WeberOracle { tol }
    }
}

impl Algorithm for WeberOracle {
    fn name(&self) -> &'static str {
        "weber-oracle"
    }

    fn destination(&self, snap: &Snapshot) -> Point {
        weber_point_weiszfeld(snap.config().points(), self.tol).point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::Configuration;
    use std::f64::consts::TAU;

    #[test]
    fn targets_the_geometric_median() {
        let pts: Vec<Point> = (0..3)
            .map(|k| {
                let th = TAU * k as f64 / 3.0;
                Point::new(th.cos(), th.sin())
            })
            .collect();
        let alg = WeberOracle::default();
        let snap = Snapshot::new(Configuration::new(pts.clone()), pts[0]);
        assert!(alg.destination(&snap).dist(Point::ORIGIN) < 1e-6);
    }

    #[test]
    fn heavy_point_captures_the_median() {
        let heavy = Point::new(1.0, 1.0);
        let mut pts = vec![heavy; 5];
        pts.push(Point::new(9.0, 9.0));
        let alg = WeberOracle::default();
        let snap = Snapshot::new(Configuration::new(pts), heavy);
        assert!(alg.destination(&snap).dist(heavy) < 1e-6);
    }
}
