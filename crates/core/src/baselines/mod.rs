//! Baseline gathering algorithms the paper positions WAIT-FREE-GATHER
//! against (Section I).
//!
//! | Baseline | Idea | Known limitation the experiments demonstrate |
//! |---|---|---|
//! | [`OrderedMarch`] | classic non-wait-free gathering: one designated robot at a time walks to the rallying point | a single crash of the designated robot deadlocks the system |
//! | [`AgmonPelegStyle`] | reconstruction of the 1-crash-tolerant algorithm of Agmon & Peleg: everyone to the multiplicity point, else everyone to the SEC centre | requires distinct initial positions; adversarial stops can mint a second multiplicity point under `f ≥ 2` |
//! | [`CenterOfGravity`] | gravitational *convergence* (Cohen & Peleg): always move to the centroid | converges but the target shifts every round — exact gathering is not achieved in bounded adversarial executions |
//! | [`WeberOracle`] | move to the (numerically computed) Weber point | not computable exactly in general — this oracle shows why the paper's computable-Weber classes matter |
//! | [`GridMarch`] | grid-constrained gathering (Bose et al., arXiv:1709.00877): axis-aligned unit steps on ℤ² toward the multiplicity point or rounded centroid | assumes rigid unit hops and a common compass; a non-rigid ASYNC adversary strands robots mid-edge, off the lattice |

mod agmon_peleg;
mod center_of_gravity;
mod grid_march;
mod ordered_march;
mod weber_oracle;

pub use agmon_peleg::AgmonPelegStyle;
pub use center_of_gravity::CenterOfGravity;
pub use grid_march::GridMarch;
pub use ordered_march::OrderedMarch;
pub use weber_oracle::WeberOracle;
