//! Classic non-wait-free gathering: robots move one at a time.
//!
//! This is the algorithmic pattern the paper's introduction warns about:
//! "when the robots are instructed to move in some specific order defined
//! by the algorithm, if one robot crashes all robots that were waiting for
//! this robot would never move, thus creating a deadlock."
//!
//! The rallying point is the unique maximum-multiplicity point if one
//! exists, otherwise the centre of the smallest enclosing circle. Among the
//! robots not at the rallying point, only the one with the minimal
//! `(distance, view)` key moves; everyone else waits. Fault-free this
//! gathers from most configurations; a single crash of the designated
//! walker freezes the execution forever (experiment T2).

use gather_config::{view_of, Configuration};
use gather_geom::{Point, Tol};
use gather_sim::prelude::{Algorithm, Snapshot};

/// The classic "one robot walks, everyone waits" gathering rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrderedMarch {
    tol: Tol,
}

impl OrderedMarch {
    /// The baseline with an explicit tolerance policy.
    pub fn new(tol: Tol) -> Self {
        OrderedMarch { tol }
    }

    /// The rallying point: unique max-multiplicity location, or the SEC
    /// centre.
    fn rally(config: &Configuration) -> Point {
        config
            .unique_max_multiplicity()
            .map(|(p, _)| p)
            .unwrap_or_else(|| config.sec().center)
    }

    /// The location designated to move: minimal `(distance to rally, view)`
    /// among locations not at the rally point.
    fn designated(config: &Configuration, rally: Point, tol: Tol) -> Option<Point> {
        config
            .distinct_points()
            .into_iter()
            .filter(|p| !p.within(rally, tol.snap))
            .min_by(|p, q| {
                p.dist(rally)
                    .total_cmp(&q.dist(rally))
                    .then_with(|| view_of(config, *p, tol).cmp(&view_of(config, *q, tol)))
            })
    }
}

impl Algorithm for OrderedMarch {
    fn name(&self) -> &'static str {
        "ordered-march"
    }

    fn destination(&self, snap: &Snapshot) -> Point {
        let config = snap.config();
        let me = snap.me();
        let rally = Self::rally(config);
        match Self::designated(config, rally, self.tol) {
            Some(walker) if me.within(walker, self.tol.snap) => rally,
            _ => me, // everyone else waits (the non-wait-free sin)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(points: Vec<Point>, me: Point) -> Snapshot<'static> {
        Snapshot::new(Configuration::new(points), me)
    }

    #[test]
    fn only_the_closest_robot_moves() {
        let heavy = Point::new(0.0, 0.0);
        let pts = vec![heavy, heavy, Point::new(2.0, 0.0), Point::new(5.0, 0.5)];
        let alg = OrderedMarch::default();
        // The robot at distance 2 is designated.
        assert_eq!(
            alg.destination(&snap(pts.clone(), Point::new(2.0, 0.0))),
            heavy
        );
        // The farther robot waits.
        assert_eq!(
            alg.destination(&snap(pts.clone(), Point::new(5.0, 0.5))),
            Point::new(5.0, 0.5)
        );
        // Robots at the rally stay.
        assert_eq!(alg.destination(&snap(pts, heavy)), heavy);
    }

    #[test]
    fn distinct_positions_rally_at_sec_center() {
        let pts = vec![
            Point::new(-2.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let alg = OrderedMarch::default();
        // SEC centre is the origin; (0,1) is closest and designated.
        let d = alg.destination(&snap(pts.clone(), Point::new(0.0, 1.0)));
        assert!(d.dist(Point::ORIGIN) < 1e-9);
        let d2 = alg.destination(&snap(pts, Point::new(2.0, 0.0)));
        assert_eq!(d2, Point::new(2.0, 0.0));
    }

    #[test]
    fn gathered_configuration_is_fixed() {
        let p = Point::new(1.0, 1.0);
        let alg = OrderedMarch::default();
        assert_eq!(alg.destination(&snap(vec![p; 3], p)), p);
    }
}
