//! Reconstruction of the 1-crash-tolerant gathering of Agmon & Peleg [1].
//!
//! The original algorithm (for robots starting at *distinct* positions)
//! gathers `n ≥ 3` robots in ATOM despite one crash by making sure at
//! least two robots are always instructed to move. This reconstruction
//! keeps its two phases:
//!
//! * a unique point of maximum multiplicity exists → **every** robot moves
//!   straight toward it (no side-stepping);
//! * otherwise → every robot moves toward the centre of the smallest
//!   enclosing circle.
//!
//! Both phases instruct all robots to move, so one crash cannot block
//! progress. The known weaknesses the paper's algorithm fixes, shown in
//! experiment T2:
//!
//! * straight unordered marching can merge two robots *away* from the
//!   target under adversarial stops, minting a second maximum-multiplicity
//!   point and losing the unique rally (needs `f ≥ 2` or bad luck);
//! * the SEC centre is not invariant under the robots' own movement, so an
//!   adversary can drag the phase-2 target around;
//! * configurations with multiple multiplicity points from the start
//!   (arbitrary initial configurations) are outside its contract.

use gather_config::Configuration;
use gather_geom::{Point, Tol};
use gather_sim::prelude::{Algorithm, Snapshot};

/// Agmon–Peleg-style 1-crash-tolerant gathering (reconstruction).
#[derive(Debug, Clone, Copy, Default)]
pub struct AgmonPelegStyle {
    tol: Tol,
}

impl AgmonPelegStyle {
    /// The baseline with an explicit tolerance policy.
    pub fn new(tol: Tol) -> Self {
        AgmonPelegStyle { tol }
    }

    fn rally(config: &Configuration) -> Point {
        config
            .unique_max_multiplicity()
            .filter(|(_, m)| *m > 1)
            .map(|(p, _)| p)
            .unwrap_or_else(|| config.sec().center)
    }
}

impl Algorithm for AgmonPelegStyle {
    fn name(&self) -> &'static str {
        "agmon-peleg"
    }

    fn destination(&self, snap: &Snapshot) -> Point {
        let rally = Self::rally(snap.config());
        if snap.me().within(rally, self.tol.snap) {
            snap.me()
        } else {
            rally
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(points: Vec<Point>, me: Point) -> Snapshot<'static> {
        Snapshot::new(Configuration::new(points), me)
    }

    #[test]
    fn multiplicity_point_attracts_everyone() {
        let heavy = Point::new(1.0, 1.0);
        let pts = vec![heavy, heavy, Point::new(4.0, 0.0), Point::new(-2.0, 3.0)];
        let alg = AgmonPelegStyle::default();
        for me in [Point::new(4.0, 0.0), Point::new(-2.0, 3.0)] {
            assert_eq!(alg.destination(&snap(pts.clone(), me)), heavy);
        }
        assert_eq!(alg.destination(&snap(pts, heavy)), heavy);
    }

    #[test]
    fn distinct_positions_head_to_sec_center() {
        let pts = vec![
            Point::new(-3.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let alg = AgmonPelegStyle::default();
        let d = alg.destination(&snap(pts, Point::new(0.0, 1.0)));
        assert!(d.dist(Point::ORIGIN) < 1e-9);
    }

    #[test]
    fn singleton_max_multiplicity_is_not_a_rally() {
        // All multiplicities are 1: even if one is "uniquely maximal" by
        // tie-breaking, only stacks (m > 1) count as rally points.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ];
        let alg = AgmonPelegStyle::default();
        let d = alg.destination(&snap(pts.clone(), pts[0]));
        let sec = Configuration::new(pts).sec().center;
        assert!(d.dist(sec) < 1e-9);
    }

    #[test]
    fn at_least_two_robots_always_move() {
        // The defining 1-crash-tolerance property: count movers.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ];
        let alg = AgmonPelegStyle::default();
        let movers = pts
            .iter()
            .filter(|me| {
                let d = alg.destination(&snap(pts.clone(), **me));
                d.dist(**me) > 1e-9
            })
            .count();
        assert!(movers >= 2, "only {movers} movers");
    }
}
