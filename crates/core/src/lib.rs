//! WAIT-FREE-GATHER: deterministic gathering of `n` anonymous, oblivious,
//! disoriented mobile robots tolerating up to `n − 1` crash faults.
//!
//! This crate is the primary contribution of the reproduction of
//! *"Gathering of Mobile Robots Tolerating Multiple Crash Faults"*
//! (Bouzid, Das, Tixeuil; ICDCS 2013): the algorithm of Figure 2, split
//! into one rule per configuration class (Section V.B), plus the baseline
//! algorithms the paper positions itself against.
//!
//! # The algorithm
//!
//! On every activation a robot classifies the observed configuration
//! (`gather_config::classify`) and dispatches:
//!
//! * **`M`** (unique max-multiplicity point `c`) — robots at `c` stay;
//!   robots with a free path move straight to `c`; blocked robots side-step
//!   clockwise by a third of the angular gap to the nearest occupied ray
//!   ([`rules::multiple`]);
//! * **`QR` / `L1W`** — move straight to the Weber point, which is
//!   computable for these classes and invariant under the movement
//!   ([`rules::weberward`]);
//! * **`A`** (asymmetric) — elect the best safe point by
//!   `(multiplicity, −Σ distances, view)` and move straight to it
//!   ([`rules::asymmetric`]);
//! * **`L2W`** (collinear, no unique Weber point) — the two endpoint
//!   locations rotate off the line, everyone else heads to the line centre
//!   ([`rules::collinear2w`]);
//! * **`B`** (bivalent) — outside the algorithm's contract (gathering is
//!   impossible, Lemma 5.2); the implementation moves to the midpoint so
//!   the algorithm stays total ([`rules::bivalent`]).
//!
//! Theorem 5.1: from every initial configuration except `B`, all correct
//! robots gather, for every fair scheduler, every motion adversary and any
//! `f ≤ n − 1` crashes.
//!
//! # Example
//!
//! ```
//! use gathering::WaitFreeGather;
//! use gather_sim::prelude::*;
//! use gather_geom::Point;
//!
//! let mut engine = Engine::builder(vec![
//!         Point::new(0.0, 0.0), Point::new(4.0, 0.0),
//!         Point::new(1.0, 2.5), Point::new(3.0, 3.0),
//!     ])
//!     .algorithm(WaitFreeGather::default())
//!     .crash_plan(CrashAtRounds::at_start([2])) // one robot crashes
//!     .build();
//! let outcome = engine.run(10_000);
//! assert!(outcome.gathered());
//! ```

pub mod baselines;
pub mod rules;
mod wait_free;

pub use baselines::{AgmonPelegStyle, CenterOfGravity, GridMarch, OrderedMarch, WeberOracle};
pub use wait_free::WaitFreeGather;
