//! The WAIT-FREE-GATHER dispatcher (Figure 2 of the paper).

use crate::rules;
use gather_config::{classify, Class};
use gather_geom::{Point, Tol};
use gather_sim::prelude::{Algorithm, Snapshot};

/// The paper's algorithm: crash-tolerant deterministic gathering in the
/// ATOM model with strong multiplicity detection and chirality.
///
/// On each activation the robot classifies the observed configuration and
/// applies the matching rule — see the [crate documentation](crate) for the
/// per-class behaviour and [`rules`] for the implementations. The algorithm
/// is oblivious (no state), anonymous (no identities), and equivariant
/// under the orientation-preserving similarities that relate robot frames.
///
/// # Example
///
/// ```
/// use gathering::WaitFreeGather;
/// use gather_sim::prelude::*;
/// use gather_geom::Point;
///
/// let mut engine = Engine::builder(vec![
///         Point::new(0.0, 0.0), Point::new(6.0, 0.0), Point::new(2.0, 5.0),
///     ])
///     .algorithm(WaitFreeGather::default())
///     .build();
/// assert!(engine.run(10_000).gathered());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WaitFreeGather {
    tol: Tol,
    sidestep_fraction: f64,
}

impl Default for WaitFreeGather {
    fn default() -> Self {
        WaitFreeGather {
            tol: Tol::default(),
            sidestep_fraction: 1.0 / 3.0,
        }
    }
}

impl WaitFreeGather {
    /// The algorithm with an explicit tolerance policy.
    pub fn new(tol: Tol) -> Self {
        WaitFreeGather {
            tol,
            ..Default::default()
        }
    }

    /// Overrides the class-`M` side-step fraction of the angular gap
    /// (paper: `1/3`). Exposed for the A1 ablation; fractions near `1`
    /// court the collision hazard the paper's constant rules out.
    pub fn with_sidestep_fraction(mut self, fraction: f64) -> Self {
        self.sidestep_fraction = fraction;
        self
    }

    /// The tolerance policy in use.
    pub fn tol(&self) -> Tol {
        self.tol
    }
}

impl Algorithm for WaitFreeGather {
    fn name(&self) -> &'static str {
        "wait-free-gather"
    }

    fn destination(&self, snap: &Snapshot) -> Point {
        let config = snap.config();
        let me = snap.me();
        let tol = self.tol;
        // Prefer the snapshot's precomputed analysis (the engine's shared
        // per-round classification, target already in this frame); classify
        // from scratch for hand-built snapshots. Identical by construction:
        // the analysis is a pure function of the observed configuration.
        let analysis = match snap.analysis() {
            Some(a) => *a,
            None => classify(config, tol),
        };
        match analysis.class {
            Class::Multiple => {
                let target = analysis.target.expect("class M has a target");
                rules::multiple::destination_with_fraction(
                    config,
                    me,
                    target,
                    tol,
                    self.sidestep_fraction,
                )
            }
            Class::QuasiRegular | Class::Collinear1W => {
                let target = analysis.target.expect("QR/L1W have a Weber target");
                rules::weberward::destination(target)
            }
            // The elected safe point is part of the analysis (classify runs
            // the Figure-2 line-17 election), so the shared pipeline pays
            // for it once per round; the per-robot rule is the fallback for
            // analyses predating the election (none today) and keeps the
            // explicit no-safe-point panic.
            Class::Asymmetric => match analysis.target {
                Some(t) => t,
                None => rules::asymmetric::destination(config, me, tol),
            },
            Class::Collinear2W => rules::collinear2w::destination(config, me, tol),
            Class::Bivalent => rules::bivalent::destination(config, me, tol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::Configuration;
    use gather_geom::Similarity;
    use std::f64::consts::TAU;

    fn snap_at(points: Vec<Point>, me: Point) -> Snapshot<'static> {
        Snapshot::new(Configuration::new(points), me)
    }

    fn wfg() -> WaitFreeGather {
        WaitFreeGather::default()
    }

    #[test]
    fn class_m_moves_toward_heavy_point() {
        let c = Point::new(1.0, 1.0);
        let snap = snap_at(
            vec![c, c, Point::new(5.0, 1.0), Point::new(1.0, 6.0)],
            Point::new(5.0, 1.0),
        );
        assert_eq!(wfg().destination(&snap), c);
    }

    #[test]
    fn class_m_robot_at_target_stays() {
        let c = Point::new(1.0, 1.0);
        let snap = snap_at(vec![c, c, Point::new(5.0, 1.0)], c);
        assert_eq!(wfg().destination(&snap), c);
    }

    #[test]
    fn class_qr_moves_to_weber_point() {
        let pts: Vec<Point> = (0..4)
            .map(|k| {
                let th = TAU * k as f64 / 4.0;
                Point::new(3.0 * th.cos(), 3.0 * th.sin())
            })
            .collect();
        let me = pts[0];
        let snap = snap_at(pts, me);
        let d = wfg().destination(&snap);
        assert!(d.dist(Point::ORIGIN) < 1e-6, "destination {d}");
    }

    #[test]
    fn class_l1w_moves_to_median() {
        let snap = snap_at(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(9.0, 0.0),
            ],
            Point::new(9.0, 0.0),
        );
        let d = wfg().destination(&snap);
        assert!(d.dist(Point::new(2.0, 0.0)) < 1e-9);
    }

    #[test]
    fn class_l2w_interior_robot_heads_to_center() {
        let snap = snap_at(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(8.0, 0.0),
            ],
            Point::new(1.0, 0.0),
        );
        assert_eq!(wfg().destination(&snap), Point::new(4.0, 0.0));
    }

    #[test]
    fn class_l2w_endpoint_leaves_line() {
        let snap = snap_at(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(8.0, 0.0),
            ],
            Point::new(0.0, 0.0),
        );
        let d = wfg().destination(&snap);
        assert!(d.y.abs() > 0.1, "endpoint stayed on the line: {d}");
    }

    #[test]
    fn class_a_all_robots_share_a_destination() {
        let deg = |x: f64| x.to_radians();
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin()),
            Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
        ];
        let dests: Vec<Point> = pts
            .iter()
            .map(|p| wfg().destination(&snap_at(pts.clone(), *p)))
            .collect();
        for d in &dests[1..] {
            assert_eq!(dests[0], *d);
        }
    }

    #[test]
    fn bivalent_is_total() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(2.0, 0.0);
        let snap = snap_at(vec![p, p, q, q], p);
        assert_eq!(wfg().destination(&snap), Point::new(1.0, 0.0));
    }

    #[test]
    fn gathered_configuration_is_a_fixed_point() {
        let p = Point::new(3.0, -2.0);
        let snap = snap_at(vec![p; 5], p);
        assert_eq!(wfg().destination(&snap), p);
    }

    #[test]
    fn destination_is_equivariant_under_similarity() {
        // The honest model check: transform the snapshot, the destination
        // transforms along.
        let deg = |x: f64| x.to_radians();
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin()),
            Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
            Point::new(1.0, 0.7),
        ];
        let sim = Similarity::new(0.83, 1.7, Point::new(-4.0, 2.0));
        for me in &pts {
            let d_orig = wfg().destination(&snap_at(pts.clone(), *me));
            let moved: Vec<Point> = pts.iter().map(|p| sim.apply(*p)).collect();
            let d_moved = wfg().destination(&snap_at(moved, sim.apply(*me)));
            assert!(
                sim.apply(d_orig).dist(d_moved) < 1e-5,
                "equivariance broken at {me}: {} vs {}",
                sim.apply(d_orig),
                d_moved
            );
        }
    }

    #[test]
    fn wait_freeness_at_most_one_staying_location() {
        // Lemma 5.1 spot-check across one configuration of each class.
        let deg = |x: f64| x.to_radians();
        let configs: Vec<Vec<Point>> = vec![
            // M
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(0.0, 4.0),
            ],
            // QR (square)
            (0..4)
                .map(|k| {
                    let th = TAU * k as f64 / 4.0;
                    Point::new(3.0 * th.cos(), 3.0 * th.sin())
                })
                .collect(),
            // L1W
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(9.0, 0.0),
            ],
            // L2W
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(8.0, 0.0),
            ],
            // A
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin()),
                Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
            ],
        ];
        for pts in configs {
            let cfg = Configuration::new(pts.clone());
            let mut staying = 0;
            for p in cfg.distinct_points() {
                let d = wfg().destination(&snap_at(pts.clone(), p));
                if d.within(p, 1e-9) {
                    staying += 1;
                }
            }
            assert!(staying <= 1, "{staying} staying locations in {cfg}");
        }
    }
}
