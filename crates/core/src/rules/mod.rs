//! The per-class movement rules of WAIT-FREE-GATHER (Figure 2).
//!
//! Each module implements one branch of the algorithm as a pure function
//! `(configuration, my position, tolerance) → destination`. The dispatcher
//! lives in [`crate::WaitFreeGather`].

pub mod asymmetric;
pub mod bivalent;
pub mod collinear2w;
pub mod multiple;
pub mod weberward;
