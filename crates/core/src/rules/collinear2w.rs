//! Class `L2W`: collinear configurations without a unique Weber point.
//!
//! At least four distinct locations lie on one line (Lemma 4.1). The two
//! *endpoint* locations rotate off the line — clockwise around the line
//! centre by `π/4`, keeping their radius — while every other robot heads to
//! the centre of the line segment. If any endpoint robot moves at all the
//! configuration leaves the linear classes (Lemma 5.8); if the endpoints
//! are all crashed the centre is a fixed target and the correct robots
//! gather there (Lemma 5.9). No reachable configuration is bivalent
//! (Lemma 5.7).

use gather_config::Configuration;
use gather_geom::angle::rotate_cw_around;
use gather_geom::{Line, Point, Tol};
use std::f64::consts::FRAC_PI_4;

/// The geometry of an `L2W` configuration: endpoints and line centre.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFrame {
    /// The location at the minimal projection (`u⁻`).
    pub lo: Point,
    /// The location at the maximal projection (`u⁺`).
    pub hi: Point,
    /// The midpoint of `[u⁻, u⁺]` — the gathering target for interior
    /// robots.
    pub center: Point,
}

/// Computes endpoints and centre of a collinear configuration.
///
/// # Panics
///
/// Panics if the configuration has fewer than two distinct locations.
pub fn line_frame(config: &Configuration) -> LineFrame {
    let distinct = config.distinct_points();
    assert!(
        distinct.len() >= 2,
        "line frame of a gathered configuration"
    );
    let far = distinct
        .iter()
        .copied()
        .max_by(|a, b| distinct[0].dist2(*a).total_cmp(&distinct[0].dist2(*b)))
        .expect("non-empty");
    let line = Line::through(distinct[0], far);
    let (mut lo, mut hi) = (distinct[0], distinct[0]);
    let (mut t_lo, mut t_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in distinct {
        let t = line.project(p);
        if t < t_lo {
            t_lo = t;
            lo = p;
        }
        if t > t_hi {
            t_hi = t;
            hi = p;
        }
    }
    LineFrame {
        lo,
        hi,
        center: lo.midpoint(hi),
    }
}

/// Destination for class `L2W`.
///
/// * endpoint robots rotate clockwise around the line centre by `π/4`
///   (same distance from the centre, strictly off the line);
/// * all other robots move straight to the centre (robots already there
///   stay).
pub fn destination(config: &Configuration, me: Point, tol: Tol) -> Point {
    let frame = line_frame(config);
    if me.within(frame.lo, tol.snap) || me.within(frame.hi, tol.snap) {
        rotate_cw_around(me, frame.center, FRAC_PI_4)
    } else {
        frame.center
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::{classify, Class};
    use gather_geom::predicates::are_collinear;

    fn t() -> Tol {
        Tol::default()
    }

    fn l2w() -> Configuration {
        Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(8.0, 0.0),
        ])
    }

    #[test]
    fn configuration_is_l2w() {
        assert_eq!(classify(&l2w(), t()).class, Class::Collinear2W);
    }

    #[test]
    fn frame_identifies_endpoints_and_center() {
        let f = line_frame(&l2w());
        assert_eq!(f.lo, Point::new(0.0, 0.0));
        assert_eq!(f.hi, Point::new(8.0, 0.0));
        assert_eq!(f.center, Point::new(4.0, 0.0));
    }

    #[test]
    fn interior_robots_head_to_center() {
        let cfg = l2w();
        assert_eq!(
            destination(&cfg, Point::new(1.0, 0.0), t()),
            Point::new(4.0, 0.0)
        );
        assert_eq!(
            destination(&cfg, Point::new(3.0, 0.0), t()),
            Point::new(4.0, 0.0)
        );
    }

    #[test]
    fn endpoint_robots_leave_the_line() {
        let cfg = l2w();
        let line_pts = cfg.distinct_points();
        for e in [Point::new(0.0, 0.0), Point::new(8.0, 0.0)] {
            let d = destination(&cfg, e, t());
            assert!(
                !are_collinear(&[line_pts[0], line_pts[3], d], t()),
                "endpoint destination {d} still on the line"
            );
            // Radius around the centre is preserved.
            let c = Point::new(4.0, 0.0);
            assert!((c.dist(d) - c.dist(e)).abs() < 1e-9);
        }
    }

    #[test]
    fn endpoint_rotation_is_clockwise_for_both_ends() {
        let cfg = l2w();
        let d_lo = destination(&cfg, Point::new(0.0, 0.0), t());
        let d_hi = destination(&cfg, Point::new(8.0, 0.0), t());
        // Clockwise around (4,0): the left endpoint goes up, the right
        // endpoint goes down — they stay diametrically opposite.
        assert!(d_lo.y > 0.0);
        assert!(d_hi.y < 0.0);
        let c = Point::new(4.0, 0.0);
        assert!(((d_lo - c) + (d_hi - c)).norm() < 1e-9);
    }

    #[test]
    fn robot_at_center_stays() {
        let cfg = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(6.0, 0.0),
        ]);
        if classify(&cfg, t()).class == Class::Collinear2W {
            let d = destination(&cfg, Point::new(4.0, 0.0), t());
            assert_eq!(d, Point::new(4.0, 0.0));
        }
    }

    #[test]
    fn multiplicities_at_endpoints_rotate_together() {
        let cfg = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(8.0, 0.0),
        ]);
        assert_eq!(classify(&cfg, t()).class, Class::Collinear2W);
        let d = destination(&cfg, Point::new(0.0, 0.0), t());
        assert!(d.y.abs() > 0.1, "endpoint failed to leave the line: {d}");
    }

    #[test]
    #[should_panic(expected = "gathered")]
    fn gathered_input_panics() {
        let cfg = Configuration::new(vec![Point::ORIGIN; 3]);
        let _ = line_frame(&cfg);
    }
}
