//! Class `A`: asymmetric configurations.
//!
//! Every occupied position has a unique view, so the robots can elect a
//! common gathering point deterministically. The election (line 17 of the
//! paper's Figure 2) runs over the *safe points* of the configuration
//! (Definition 8 — guaranteed non-empty for non-linear configurations by
//! Lemma 4.2) and picks the point that maximises multiplicity, then
//! minimises the sum of distances to all robots, then maximises the view.
//! All robots move straight to the elected point. Movement toward a safe
//! point can never produce the bivalent class (Lemma 5.6, Claim C1), and
//! the potential `φ = (max multiplicity, Σ distances)` strictly improves
//! whenever anything moves (Claim C2), so the execution converges to `M`
//! or to a gathered configuration.

use gather_config::Configuration;
use gather_geom::{Point, Tol};

/// The elected gathering point of an asymmetric configuration: the best
/// safe point by `(multiplicity ↑, Σ distances ↓, view ↑)`. The election
/// itself lives in [`gather_config::elected_point`] so the engine's shared
/// round analysis can carry the result as the class-`A` target; this
/// wrapper adds the class-`A` precondition.
///
/// # Panics
///
/// Panics if the configuration has no safe point — impossible for class
/// `A` inputs (they are non-linear; Lemma 4.2).
pub fn elected_point(config: &Configuration, tol: Tol) -> Point {
    gather_config::elected_point(config, tol)
        .unwrap_or_else(|| panic!("class-A configuration without a safe point: {config}"))
}

/// Destination for class `A`: every robot moves straight to the elected
/// safe point (robots already there stay).
pub fn destination(config: &Configuration, _me: Point, tol: Tol) -> Point {
    elected_point(config, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::{classify, is_safe_point, Class};

    fn t() -> Tol {
        Tol::default()
    }

    /// The canonical robustly-asymmetric configuration (Weber point at the
    /// occupied origin, directions 0°/100°/200°).
    fn asym() -> Configuration {
        let deg = |d: f64| d.to_radians();
        Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin()),
            Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
        ])
    }

    #[test]
    fn configuration_is_class_a() {
        assert_eq!(classify(&asym(), t()).class, Class::Asymmetric);
    }

    #[test]
    fn elected_point_is_safe_and_occupied() {
        let cfg = asym();
        let e = elected_point(&cfg, t());
        assert!(is_safe_point(&cfg, e, t()));
        assert!(cfg.mult(e, t()) >= 1);
    }

    #[test]
    fn all_robots_agree_on_the_elected_point() {
        let cfg = asym();
        let points = cfg.distinct_points();
        let first = destination(&cfg, points[0], t());
        for p in &points[1..] {
            assert_eq!(destination(&cfg, *p, t()), first);
        }
    }

    #[test]
    fn election_prefers_higher_multiplicity() {
        // A stack of 2 robots (still no unique max? make another stack of 2
        // elsewhere so the config is not class M).
        let deg = |d: f64| d.to_radians();
        let heavy = Point::new(3.0, 0.0);
        let other = Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin());
        let cfg = Configuration::new(vec![
            Point::new(0.0, 0.0),
            heavy,
            heavy,
            other,
            other,
            Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
        ]);
        // Both stacks have multiplicity 2: election must pick a safe stack
        // over the multiplicity-1 points if one is safe.
        let e = elected_point(&cfg, t());
        assert!(
            cfg.mult(e, t()) == 2
                || !is_safe_point(&cfg, heavy, t()) && !is_safe_point(&cfg, other, t()),
            "elected {e} with mult {}",
            cfg.mult(e, t())
        );
    }

    #[test]
    fn election_is_similarity_invariant() {
        use gather_geom::Similarity;
        let cfg = asym();
        let sim = Similarity::new(1.1, 2.0, Point::new(5.0, -7.0));
        let moved = cfg.map(|p| sim.apply(p));
        let e1 = sim.apply(elected_point(&cfg, t()));
        let e2 = elected_point(&moved, t());
        assert!(e1.dist(e2) < 1e-6, "{e1} vs {e2}");
    }

    #[test]
    fn election_breaks_distance_ties_by_view() {
        // Construct a configuration where two safe points share the same
        // multiplicity; the sum-of-distances comparison (then view) must
        // still produce a single winner — verified by agreement from all
        // positions.
        let cfg = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(1.0, 3.0),
            Point::new(5.0, 3.1),
            Point::new(3.0, 5.0),
        ]);
        if classify(&cfg, t()).class == Class::Asymmetric {
            let e = elected_point(&cfg, t());
            for p in cfg.distinct_points() {
                assert_eq!(destination(&cfg, p, t()), e);
            }
        }
    }

    #[test]
    #[should_panic(expected = "without a safe point")]
    fn bivalent_like_input_panics() {
        // Out-of-contract input (no safe point): must fail loudly.
        let p = Point::new(0.0, 0.0);
        let q = Point::new(4.0, 0.0);
        let cfg = Configuration::new(vec![p, p, q, q]);
        let _ = elected_point(&cfg, t());
    }
}
