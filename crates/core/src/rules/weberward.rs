//! Classes `QR` and `L1W`: move straight to the Weber point.
//!
//! For quasi-regular configurations the Weber point is the centre of
//! quasi-regularity (Lemma 3.3); for collinear configurations with a unique
//! median it is that median. In both cases the point is *invariant under
//! straight moves toward it* (Lemma 3.2), so every robot simply heads
//! there; crashes cannot displace the target (Lemmas 5.4, 5.5).

use gather_geom::Point;

/// Destination for classes `QR` and `L1W`: the precomputed Weber point.
///
/// The heavy lifting (computing the target) happens during classification
/// (`gather_config::classify` returns it in `Analysis::target`); the rule
/// itself is the identity on the target. Robots already at the target
/// return it unchanged, which the engine treats as "do not move".
pub fn destination(target: Point) -> Point {
    target
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::{classify, Class, Configuration};
    use gather_geom::Tol;
    use std::f64::consts::TAU;

    #[test]
    fn qr_robots_head_to_center_of_quasi_regularity() {
        let cfg: Configuration = (0..5)
            .map(|k| {
                let th = TAU * k as f64 / 5.0;
                Point::new(2.0 * th.cos(), 2.0 * th.sin())
            })
            .collect();
        let a = classify(&cfg, Tol::default());
        assert_eq!(a.class, Class::QuasiRegular);
        let target = a.target.expect("QR has a target");
        assert!(destination(target).dist(Point::ORIGIN) < 1e-6);
    }

    #[test]
    fn l1w_robots_head_to_unique_median() {
        let cfg = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(9.0, 0.0),
        ]);
        let a = classify(&cfg, Tol::default());
        assert_eq!(a.class, Class::Collinear1W);
        let target = a.target.expect("L1W has a target");
        assert!(destination(target).dist(Point::new(2.0, 0.0)) < 1e-9);
    }
}
