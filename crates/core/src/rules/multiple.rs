//! Class `M`: a unique point of maximum multiplicity exists.
//!
//! All robots head for the unique max-multiplicity point `c`. A robot whose
//! straight path is blocked (another occupied location strictly between it
//! and `c`) *side-steps*: it rotates clockwise around `c`, keeping its
//! radius, by one third of the clockwise angular gap to the nearest other
//! occupied ray. The paper's Claims C1/C2 (Lemma 5.3) show this never
//! merges robots anywhere except at `c` — so `c` remains the unique
//! maximum — while guaranteeing progress under any fair scheduler and any
//! crash pattern.

use gather_config::Configuration;
use gather_geom::angle::{normalize_tau, rotate_cw_around};
use gather_geom::predicates::is_strictly_between;
use gather_geom::{Point, Tol};
use std::f64::consts::TAU;

/// Destination for a robot at `me` when the configuration has the unique
/// max-multiplicity point `target`.
///
/// * at `target` → stay;
/// * free path → straight to `target`;
/// * blocked → clockwise side-step at constant radius (angle =
///   `min(gap, π)/3` where `gap` is the clockwise angle to the nearest
///   other occupied ray around `target`).
pub fn destination(config: &Configuration, me: Point, target: Point, tol: Tol) -> Point {
    destination_with_fraction(config, me, target, tol, 1.0 / 3.0)
}

/// [`destination`] with an explicit side-step fraction of the angular gap
/// (the paper uses `1/3`; experiment A1 ablates the choice). The fraction
/// is clamped to `(0, 1)`; values close to `1` step almost onto the next
/// occupied ray, which is exactly the collision hazard the paper's
/// constant avoids.
pub fn destination_with_fraction(
    config: &Configuration,
    me: Point,
    target: Point,
    tol: Tol,
    fraction: f64,
) -> Point {
    if me.within(target, tol.snap) {
        return target;
    }

    // Raw points, not `distinct_points()`: duplicates change neither the
    // `any` below nor the minimum gap, and the raw slice needs no
    // allocation (this runs once per robot per round in class M).
    let blocked = config
        .points()
        .iter()
        .any(|p| is_strictly_between(me, target, *p, tol));
    if !blocked {
        return target;
    }

    // Clockwise angular gap from my ray to the nearest other occupied ray
    // around the target.
    let my_angle = (me - target).angle();
    let mut gap = TAU;
    for &p in config.points() {
        if p.within(target, tol.snap) {
            continue;
        }
        let a = normalize_tau(my_angle - (p - target).angle()); // clockwise
        if a > 1e-9 && a < gap {
            gap = a;
        }
    }
    let fraction = fraction.clamp(1e-3, 1.0 - 1e-3);
    let step = gap.min(std::f64::consts::PI) * fraction;
    rotate_cw_around(me, target, step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_3;

    fn t() -> Tol {
        Tol::default()
    }

    fn m_config() -> (Configuration, Point) {
        // Heavy point at the origin, satellites elsewhere.
        let c = Point::new(0.0, 0.0);
        let cfg = Configuration::new(vec![
            c,
            c,
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
            Point::new(-2.0, -2.0),
        ]);
        (cfg, c)
    }

    #[test]
    fn robot_at_target_stays() {
        let (cfg, c) = m_config();
        assert_eq!(destination(&cfg, c, c, t()), c);
    }

    #[test]
    fn free_robot_moves_straight_to_target() {
        let (cfg, c) = m_config();
        let me = Point::new(4.0, 0.0);
        assert_eq!(destination(&cfg, me, c, t()), c);
    }

    #[test]
    fn blocked_robot_side_steps_at_constant_radius() {
        // Robot at (8,0) blocked by the robot at (4,0).
        let c = Point::new(0.0, 0.0);
        let cfg = Configuration::new(vec![
            c,
            c,
            Point::new(4.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(0.0, 3.0),
        ]);
        let me = Point::new(8.0, 0.0);
        let d = destination(&cfg, me, c, t());
        assert_ne!(d, c);
        assert_ne!(d, me);
        assert!((c.dist(d) - 8.0).abs() < 1e-9, "radius changed: {d}");
    }

    #[test]
    fn side_step_rotates_clockwise() {
        let c = Point::new(0.0, 0.0);
        let cfg = Configuration::new(vec![
            c,
            c,
            Point::new(4.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(0.0, 3.0), // 90° CCW from my ray — CW gap is 270°
        ]);
        let me = Point::new(8.0, 0.0);
        let d = destination(&cfg, me, c, t());
        // Clockwise from +x means negative y.
        assert!(d.y < 0.0, "side-step went counter-clockwise: {d}");
    }

    #[test]
    fn side_step_stays_within_one_third_of_gap() {
        let c = Point::new(0.0, 0.0);
        // Nearest CW ray at 30° below mine.
        let below = Point::new(
            5.0 * (-30.0_f64).to_radians().cos(),
            5.0 * (-30.0_f64).to_radians().sin(),
        );
        let cfg = Configuration::new(vec![
            c,
            c,
            Point::new(4.0, 0.0),
            Point::new(8.0, 0.0),
            below,
        ]);
        let me = Point::new(8.0, 0.0);
        let d = destination(&cfg, me, c, t());
        let turned = normalize_tau((me - c).angle() - (d - c).angle());
        assert!(turned > 0.0);
        assert!(
            turned <= 30.0_f64.to_radians() / 3.0 + 1e-9,
            "turned {turned} rad, gap was 30°"
        );
    }

    #[test]
    fn all_rays_shared_still_side_steps() {
        // Everything on one ray: blocked robot side-steps by π/3 at most.
        let c = Point::new(0.0, 0.0);
        let cfg = Configuration::new(vec![c, c, Point::new(2.0, 0.0), Point::new(5.0, 0.0)]);
        let me = Point::new(5.0, 0.0);
        let d = destination(&cfg, me, c, t());
        assert_ne!(d, me);
        let turned = normalize_tau((me - c).angle() - (d - c).angle());
        assert!(turned > 0.0 && turned <= FRAC_PI_3 + 1e-9);
    }

    #[test]
    fn side_steps_of_distinct_radii_do_not_collide() {
        // Two blocked robots on one ray side-step together: same new ray,
        // still distinct radii.
        let c = Point::new(0.0, 0.0);
        let cfg = Configuration::new(vec![
            c,
            c,
            Point::new(2.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(8.0, 0.0),
        ]);
        let d5 = destination(&cfg, Point::new(5.0, 0.0), c, t());
        let d8 = destination(&cfg, Point::new(8.0, 0.0), c, t());
        assert!((c.dist(d5) - 5.0).abs() < 1e-9);
        assert!((c.dist(d8) - 8.0).abs() < 1e-9);
        // Same rotation angle → same ray → paths stay parallel, no merge.
        let a5 = (d5 - c).angle();
        let a8 = (d8 - c).angle();
        assert!((a5 - a8).abs() < 1e-9);
    }
}
