//! Class `B`: the bivalent configuration — outside the algorithm's
//! contract.
//!
//! Deterministic gathering from `B` is impossible (Lemma 5.2): whatever a
//! deterministic anonymous algorithm does, a scheduler/motion adversary can
//! keep the robots split into two equal groups forever. WAIT-FREE-GATHER is
//! simply not required to gather from `B`; to keep the implementation a
//! total function we use the natural attempt — every robot heads to the
//! midpoint of the two occupied locations — and experiment T3 demonstrates
//! the adversary that defeats it (and every alternative rule).

use gather_config::Configuration;
use gather_geom::{Point, Tol};

/// Destination for the bivalent class: the midpoint of the two occupied
/// locations.
///
/// # Panics
///
/// Panics if the configuration does not have exactly two occupied
/// locations.
pub fn destination(config: &Configuration, _me: Point, _tol: Tol) -> Point {
    let distinct = config.distinct_points();
    assert_eq!(
        distinct.len(),
        2,
        "bivalent rule applied to a non-bivalent configuration"
    );
    distinct[0].midpoint(distinct[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_of_the_two_groups() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(4.0, 2.0);
        let cfg = Configuration::new(vec![p, p, q, q]);
        let d = destination(&cfg, p, Tol::default());
        assert_eq!(d, Point::new(2.0, 1.0));
        // Both sides compute the same destination.
        assert_eq!(destination(&cfg, q, Tol::default()), d);
    }

    #[test]
    #[should_panic(expected = "non-bivalent")]
    fn non_bivalent_input_panics() {
        let cfg = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        let _ = destination(&cfg, Point::ORIGIN, Tol::default());
    }
}
