#!/bin/sh
# Regenerates every experiment table/figure CSV under results/.
# Runs the offline build+test gate first so tables are never produced from
# a broken tree; skip it with NO_CHECK=1 ./run_experiments.sh.
set -e
if [ -z "$NO_CHECK" ]; then
  sh "$(dirname "$0")/scripts/check.sh"
fi
for bin in t1_theorem51 t2_baselines t3_bivalent t4_qr_detection t5_waitfree \
           t6_classification t7_byzantine f1_scaling f2_delta f3_transitions \
           f4_potential f5_crash_timing f6_staleness a1_ablations b1_throughput; do
  echo "== $bin =="
  cargo run --release -q -p gather-bench --bin "$bin" -- --out results "$@" \
    | tee "results/$bin.txt"
done
