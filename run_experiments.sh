#!/bin/sh
# Regenerates every experiment table/figure CSV under results/.
# Runs the offline build+test gate first so tables are never produced from
# a broken tree; skip it with NO_CHECK=1 ./run_experiments.sh.
#
# The harness is built exactly once up front and each runner binary is then
# invoked directly from target/release — per-binary `cargo run` used to pay
# a cargo lock + freshness check for all 16 runners. Set JOBS=N to run up
# to N runner binaries concurrently (they write disjoint results/ files and
# each scales its own worker pool via GATHER_THREADS, so parallel waves are
# safe; default is sequential, which is what a 1-core box wants).
set -e
cd "$(dirname "$0")"
if [ -z "$NO_CHECK" ]; then
  sh scripts/check.sh
fi

echo "== build (once) =="
cargo build --release -q -p gather-bench -p gather-serve

BINS="t1_theorem51 t2_baselines t3_bivalent t4_qr_detection t5_waitfree \
      t6_classification t7_byzantine f1_scaling f2_delta f3_transitions \
      f4_potential f5_crash_timing f6_staleness a1_ablations b1_throughput \
      b7_scaling"
JOBS="${JOBS:-1}"

# run_one BIN [extra args forwarded to the binary]
run_one() {
  bin="$1"
  shift
  echo "== $bin =="
  "target/release/$bin" --out results "$@" | tee "results/$bin.txt"
}

if [ "$JOBS" -gt 1 ]; then
  # Parallel waves of $JOBS binaries, draining each wave before starting
  # the next so at most $JOBS runners compete for the machine at a time.
  active=0
  for bin in $BINS; do
    run_one "$bin" "$@" &
    active=$((active + 1))
    if [ "$active" -ge "$JOBS" ]; then
      wait
      active=0
    fi
  done
  wait
else
  for bin in $BINS; do
    run_one "$bin" "$@"
  done
fi

# The service load bench, the observability-overhead bench, the
# mega-sweep bench, the ASYNC event-heap bench and the ASYNC boundary
# mapper run last and always in quick mode: the committed
# BENCH_b8_service.json / BENCH_b9_obs.json / BENCH_b10_sweep.json /
# BENCH_b12_async.json records and the committed results/sweep_phase.* and
# results/{grid,standup}_boundary.* figures are regenerated deliberately
# (full run, by hand), not as a side effect of refreshing the result
# tables. b8's quick mode covers the full new surface — cold open-loop
# sweep, cache-hit closed-loop sweep and the /v1/batch amortisation
# curve — at reduced request counts.
run_one b8_service --quick "$@"
run_one b9_obs --quick "$@"
run_one b10_sweep --quick "$@"
run_one b12_async --quick "$@"
run_one sweep --quick "$@"
run_one f7_boundary --quick "$@"
