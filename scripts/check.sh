#!/bin/sh
# Offline quality gate (hermetic-build policy, DESIGN.md §8): the default
# dependency graph is path-only, so build and tests must pass with zero
# network access. fmt and clippy run when the components are installed,
# and are skipped (with a note) when they are not.
set -e
cd "$(dirname "$0")/.."

echo "== build (offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

if cargo fmt --version >/dev/null 2>&1; then
  echo "== fmt =="
  cargo fmt --all --check
else
  echo "== fmt: rustfmt not installed, skipped =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "== clippy =="
  cargo clippy --release --offline --workspace --all-targets -- -D warnings
else
  echo "== clippy: not installed, skipped =="
fi

echo "== check.sh: all gates passed =="
