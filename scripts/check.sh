#!/bin/sh
# Offline quality gate (hermetic-build policy, DESIGN.md §8): the default
# dependency graph is path-only, so build and tests must pass with zero
# network access. fmt and clippy run when the components are installed,
# and are skipped (with a note) when they are not.
set -e
cd "$(dirname "$0")/.."

echo "== build (offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

if cargo fmt --version >/dev/null 2>&1; then
  echo "== fmt =="
  cargo fmt --all --check
else
  echo "== fmt: rustfmt not installed, skipped =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "== clippy =="
  cargo clippy --release --offline --workspace --all-targets -- -D warnings
else
  echo "== clippy: not installed, skipped =="
fi

echo "== bench-smoke (B1 vs committed baseline) =="
# Tiny B1 matrix under the counting allocator: fails on any steady-state
# heap allocation in the scratch path, a warm-started Weiszfeld that is
# not >=2x cheaper than cold, or a >20% rounds/sec regression of the
# default engine against the committed record.
smoke_out="$(mktemp -d)"
cargo run --release --offline -p gather-bench --features alloc-audit \
  --bin b1_throughput -- --quick --baseline BENCH_b1_throughput.json \
  --out "$smoke_out"
rm -rf "$smoke_out"

echo "== check.sh: all gates passed =="
