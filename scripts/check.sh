#!/bin/sh
# Offline quality gate (hermetic-build policy, DESIGN.md §8): the default
# dependency graph is path-only, so build and tests must pass with zero
# network access. fmt and clippy run when the components are installed,
# and are skipped (with a note) when they are not.
set -e
cd "$(dirname "$0")/.."

echo "== build (offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

if cargo fmt --version >/dev/null 2>&1; then
  echo "== fmt =="
  cargo fmt --all --check
else
  echo "== fmt: rustfmt not installed, skipped =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "== clippy =="
  cargo clippy --release --offline --workspace --all-targets -- -D warnings
else
  echo "== clippy: not installed, skipped =="
fi

echo "== bench-smoke (B1 vs committed baseline) =="
# Tiny B1 matrix under the counting allocator: fails on any steady-state
# heap allocation in the scratch path, a warm-started Weiszfeld that is
# not >=2x cheaper than cold, or a >20% rounds/sec regression of the
# default engine against the committed record.
smoke_out="$(mktemp -d)"
cargo run --release --offline -p gather-bench --features alloc-audit \
  --bin b1_throughput -- --quick --baseline BENCH_b1_throughput.json \
  --out "$smoke_out"

echo "== bench-smoke (B7 vs committed baseline, thread matrix) =="
# Quick B7 run against the committed record: exercises the persistent
# worker pool at 1, 2 and 4 workers over a class-diverse sweep (the
# thread-matrix smoke), cross-checks result determinism across pool sizes,
# and fails on a SoA kernel that fell behind its scalar reference or a
# >20% single-worker throughput regression. The 3x-at-4-workers gate
# enforces itself only on machines with >= 4 cores (the JSON records an
# explicit skip reason otherwise).
cargo run --release --offline -p gather-bench \
  --bin b7_scaling -- --quick --baseline BENCH_b7_scaling.json \
  --out "$smoke_out"

echo "== obs-smoke (B9 vs committed baseline) =="
# Quick B9 run: absent/disabled/enabled engine observability over a
# class-diverse sweep. Fails if carrying a disabled handle costs >2% vs
# no handle at all, if enabling instrumentation changes any simulation
# result bit (timing must never steer behaviour), or if the streamed
# trace schema drifted from the pinned key set in the committed record.
cargo run --release --offline -p gather-bench \
  --bin b9_obs -- --quick --baseline BENCH_b9_obs.json \
  --out "$smoke_out"

echo "== sweep-smoke (B10 vs committed baseline, batch vs sequential) =="
# Quick B10 run: the columnar mega-sweep engine against the
# one-engine-per-scenario map path. Always fails if batched RunMetrics
# are not bit-identical to the sequential path at any pool size (the
# identity pass covers all six configuration classes), if the batched
# path drops below 2x scenarios/sec at 1 worker, or on a >30% 1-worker
# batched-throughput regression vs the committed record. Multi-worker
# rows auto-skip with a recorded reason on machines with < 4 cores
# (the B7 convention).
cargo run --release --offline -p gather-bench \
  --bin b10_sweep -- --quick --baseline BENCH_b10_sweep.json \
  --out "$smoke_out"

echo "== largen-smoke (B11 incremental vs full recompute) =="
# Quick B11 run: the incremental dirty-tracked analysis path against the
# full-recompute reference at n in {1024, 4096}. Always fails if the two
# modes are not bit-identical (positions and cache counters) or if the
# incremental speedup drops below 3x at n = 4096 — both gates compare
# the modes against each other on the same box, so they hold on any
# machine. The absolute rounds/s regression check against the committed
# record auto-skips with a recorded reason on machines with < 2 cores
# (the B7 convention: starved-runner wall clock is noise, not signal).
cargo run --release --offline -p gather-bench \
  --bin b11_largen -- --quick --baseline BENCH_b11_largen.json \
  --out "$smoke_out"

echo "== async-smoke (B12 event-heap engine vs committed baseline) =="
# Quick B12 run: the event-heap ASYNC engine. Always fails if the
# degenerate corner (atomic cycles, lockstep pacing, rigid motion) is not
# bit-identical to the FSYNC round engine for every configuration class,
# or if a same-seed phased/non-rigid/skewed run is not byte-reproducible
# — both gates are machine-independent. The absolute events/s regression
# check against the committed record auto-skips with a recorded reason on
# machines with < 2 cores (the B7 convention).
cargo run --release --offline -p gather-bench \
  --bin b12_async -- --quick --baseline BENCH_b12_async.json \
  --out "$smoke_out"
rm -rf "$smoke_out"

echo "== service-smoke (gather-serve over TCP) =="
# Boots the scenario service on an ephemeral port and drives it with the
# pure-Rust client over a real socket: one scenario request (response
# asserted bit-identical to the in-process run), one malformed request
# (must be 400, not a hang or 500), a /metrics scrape with counter
# assertions, and a graceful shutdown that must leave the port dead.
cargo run --release --offline -p gather-serve --bin b8_service -- --smoke

echo "== serve-cache-smoke (event loop + deterministic result cache) =="
# Boots the service on its default (epoll) engine and asserts the result
# cache end to end: cold-miss/hot-hit disposition headers, cache-hit
# payloads bit-identical to in-process runs, a >= 0.9 hit-rate on a
# ~200-request probe, and /v1/batch identity through the same cache.
# Auto-skips (with the reason printed) where the epoll engine is
# unavailable — non-Linux hosts or GATHER_NO_EPOLL=1.
cargo run --release --offline -p gather-serve --bin b8_service -- --cache-smoke

echo "== trace-smoke (corpus capture + analytics vs committed baseline) =="
# The trace-corpus gate (DESIGN.md §18): captures the standard six-class
# corpus twice over POST /v1/trace against an in-process service (must be
# byte-deterministic, with the deprecated GET twin serving identical
# bytes), audits every execution clean (zero monotonicity violations,
# zero non-lemma transition edges, all gather), asserts the analyzer's
# NDJSON byte-identical to the committed baseline, and runs a
# zero-tolerance self-diff.
cargo run --release --offline -p gather-trace --bin trace-tool -- \
  smoke --baseline results/trace_analytics.json

echo "== check.sh: all gates passed =="
