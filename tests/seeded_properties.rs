//! Seeded-loop ports of the cross-crate property suite (hermetic-build
//! policy, DESIGN.md §8): the paper's lemmas as universally-quantified
//! statements on random configurations, as in `properties.rs`, but driven
//! by the in-tree PRNG so they run in the default offline build.

use gather_config::{classify, rotational_symmetry, safe_points, Class, Configuration};
use gather_geom::{
    convex_hull, hull_contains, smallest_enclosing_circle, weber_objective, weber_point_weiszfeld,
    weber_point_weiszfeld_from, Point, Similarity, Tol,
};
use gather_prng::Rng;
use gather_sim::prelude::{Algorithm, Snapshot};
use gathering::WaitFreeGather;
use std::f64::consts::TAU;

const CASES: usize = 64;

/// Random point with coordinates on a centi-grid in [-10, 10] — the grid
/// keeps configurations away from knife-edge classification boundaries,
/// like every physical deployment would be.
fn point(rng: &mut Rng) -> Point {
    Point::new(
        rng.random_range(-1000i32..1000) as f64 / 100.0,
        rng.random_range(-1000i32..1000) as f64 / 100.0,
    )
}

/// A configuration of 3..=12 robots with possible co-location (multiset).
fn raw_points(rng: &mut Rng) -> Vec<Point> {
    let n = rng.random_range(3usize..13);
    (0..n).map(|_| point(rng)).collect()
}

/// A random orientation-preserving similarity with a benign scale range.
fn similarity(rng: &mut Rng) -> Similarity {
    Similarity::new(
        rng.random_range(0.0..TAU),
        rng.random_range(0.25f64..4.0),
        point(rng),
    )
}

fn tol() -> Tol {
    Tol::default()
}

#[test]
fn classification_is_total_and_deterministic() {
    let mut rng = Rng::seed_from_u64(0xF001);
    for _ in 0..CASES {
        let config = Configuration::canonical(raw_points(&mut rng), tol());
        assert_eq!(
            classify(&config, tol()).class,
            classify(&config, tol()).class
        );
    }
}

#[test]
fn classification_and_symmetry_are_similarity_invariant() {
    let mut rng = Rng::seed_from_u64(0xF002);
    for _ in 0..CASES {
        let config = Configuration::canonical(raw_points(&mut rng), tol());
        let sim = similarity(&mut rng);
        let moved = Configuration::canonical(
            config.points().iter().map(|p| sim.apply(*p)).collect(),
            tol(),
        );
        assert_eq!(
            classify(&config, tol()).class,
            classify(&moved, tol()).class,
            "class changed under similarity on {config}"
        );
        assert_eq!(
            rotational_symmetry(&config, tol()),
            rotational_symmetry(&moved, tol()),
            "symmetry changed under similarity on {config}"
        );
    }
}

#[test]
fn non_linear_configurations_have_safe_points() {
    // Lemma 4.2.
    let mut rng = Rng::seed_from_u64(0xF003);
    for _ in 0..CASES {
        let config = Configuration::canonical(raw_points(&mut rng), tol());
        if !config.is_linear(tol()) {
            assert!(
                !safe_points(&config, tol()).is_empty(),
                "no safe point in non-linear {config}"
            );
        }
    }
}

#[test]
fn bivalent_and_l2w_have_no_safe_points() {
    // Lemma 4.3 (on whatever random configs land in B or L2W).
    let mut rng = Rng::seed_from_u64(0xF004);
    for _ in 0..CASES {
        let config = Configuration::canonical(raw_points(&mut rng), tol());
        let class = classify(&config, tol()).class;
        if class == Class::Bivalent || class == Class::Collinear2W {
            assert!(safe_points(&config, tol()).is_empty());
        }
    }
}

#[test]
fn wfg_destination_is_equivariant() {
    let mut rng = Rng::seed_from_u64(0xF005);
    let alg = WaitFreeGather::default();
    for _ in 0..CASES {
        let config = Configuration::canonical(raw_points(&mut rng), tol());
        let sim = similarity(&mut rng);
        for me in config.distinct_points() {
            let d = alg.destination(&Snapshot::new(config.clone(), me));
            let moved = config.map(|p| sim.apply(p));
            let dm = alg.destination(&Snapshot::new(moved, sim.apply(me)));
            // Allow noise proportional to the configuration extent.
            let extent = config.sec().radius.max(1.0) * sim.scale();
            assert!(
                sim.apply(d).dist(dm) <= 1e-4 * extent,
                "equivariance violated at {me}: {} vs {dm}",
                sim.apply(d)
            );
        }
    }
}

#[test]
fn wfg_moves_everyone_except_at_most_one_location() {
    // Lemma 5.1 (wait-freeness), on random configurations.
    let mut rng = Rng::seed_from_u64(0xF006);
    let alg = WaitFreeGather::default();
    for _ in 0..CASES {
        let config = Configuration::canonical(raw_points(&mut rng), tol());
        let class = classify(&config, tol()).class;
        if class == Class::Bivalent || config.is_gathered() {
            continue;
        }
        let mut staying = 0usize;
        for p in config.distinct_points() {
            let d = alg.destination(&Snapshot::new(config.clone(), p));
            if d.within(p, tol().abs) {
                staying += 1;
            }
        }
        assert!(staying <= 1, "{staying} staying locations in {config}");
    }
}

#[test]
fn wfg_never_targets_outside_the_hull_by_far() {
    // Sanity: destinations stay within the configuration's geometric
    // footprint (hull inflated by the side-step slack).
    let mut rng = Rng::seed_from_u64(0xF007);
    let alg = WaitFreeGather::default();
    for _ in 0..CASES {
        let config = Configuration::canonical(raw_points(&mut rng), tol());
        let hull = convex_hull(&config.distinct_points());
        let radius = config.sec().radius;
        for p in config.distinct_points() {
            let d = alg.destination(&Snapshot::new(config.clone(), p));
            let inflated = Tol::new(1e-9, 1e-9, 2.0 * radius.max(1.0));
            assert!(
                hull_contains(&hull, d, tol()) || hull.iter().any(|h| d.within(*h, inflated.snap)),
                "destination {d} far outside the configuration {config}"
            );
        }
    }
}

#[test]
fn sec_contains_all_points_and_is_snug() {
    let mut rng = Rng::seed_from_u64(0xF008);
    for _ in 0..CASES {
        let distinct = Configuration::canonical(raw_points(&mut rng), tol()).distinct_points();
        let circle = smallest_enclosing_circle(&distinct);
        for p in &distinct {
            assert!(circle.contains(*p, tol()));
        }
        if distinct.len() > 1 {
            let max_d = distinct
                .iter()
                .map(|p| circle.center.dist(*p))
                .fold(0.0, f64::max);
            assert!(
                (max_d - circle.radius).abs() <= 1e-6 * circle.radius.max(1.0),
                "SEC is slack"
            );
        }
    }
}

#[test]
fn weiszfeld_beats_every_input_point() {
    let mut rng = Rng::seed_from_u64(0xF009);
    for _ in 0..CASES {
        let pts = raw_points(&mut rng);
        let result = weber_point_weiszfeld(&pts, tol());
        for p in &pts {
            assert!(
                result.objective <= weber_objective(*p, &pts) + 1e-6,
                "Weber objective {} worse than input point {p}",
                result.objective
            );
        }
    }
}

#[test]
fn weber_point_is_invariant_under_contraction() {
    // Lemma 3.2, numerically: move every point halfway to the Weber point;
    // the Weber point stays (within solver noise).
    let mut rng = Rng::seed_from_u64(0xF00A);
    for _ in 0..CASES {
        let config = Configuration::canonical(raw_points(&mut rng), tol());
        if config.is_linear(tol()) {
            continue; // linear Weber sets may be intervals
        }
        let w = weber_point_weiszfeld(config.points(), tol()).point;
        let moved: Vec<Point> = config.points().iter().map(|p| p.lerp(w, 0.5)).collect();
        let w2 = weber_point_weiszfeld(&moved, tol()).point;
        let scale = config.sec().radius.max(1.0);
        assert!(w.dist(w2) <= 1e-3 * scale, "Weber drifted {w} → {w2}");
    }
}

#[test]
fn hull_contains_every_input_point() {
    let mut rng = Rng::seed_from_u64(0xF00B);
    for _ in 0..CASES {
        let pts = raw_points(&mut rng);
        let hull = convex_hull(&pts);
        for p in &pts {
            assert!(hull_contains(&hull, *p, tol()));
        }
    }
}

#[test]
fn warm_started_weiszfeld_agrees_with_cold_across_all_classes() {
    // Satellite of the zero-allocation PR: the warm-started solver entry
    // point (`weber_point_weiszfeld_from`, the Lemma 3.2 carry-over used
    // by `AnalysisCache`) must land on the same Weber point as a cold
    // solve on every configuration class, no matter where the hint comes
    // from. Classes B and L2W take the collinear median shortcut and
    // ignore the hint entirely; the test still exercises them to pin that
    // the shortcut is hint-independent.
    let mut rng = Rng::seed_from_u64(0xF00C);
    for class in Class::all() {
        for seed in 0..8u64 {
            let pts = gather_workloads::of_class(class, 8, seed);
            let cold = weber_point_weiszfeld(&pts, tol());
            let hints = [
                cold.point,                                           // perfect hint
                point(&mut rng),                                      // arbitrary hint
                Point::new(cold.point.x + 0.37, cold.point.y - 0.19), // near-miss
            ];
            for hint in hints {
                let warm = weber_point_weiszfeld_from(hint, &pts, tol());
                assert!(
                    warm.point.dist(cold.point) <= 1e-6,
                    "{class} seed {seed}: warm start from {hint} landed on \
                     {} instead of {}",
                    warm.point,
                    cold.point
                );
            }

            // Lemma 3.2 in the warm-start role it plays inside the engine:
            // after robots move toward the Weber point, last round's
            // iterate is a valid (and nearly converged) starting point.
            let contracted: Vec<Point> = pts.iter().map(|p| p.lerp(cold.point, 0.5)).collect();
            let warm = weber_point_weiszfeld_from(cold.point, &contracted, tol());
            let fresh = weber_point_weiszfeld(&contracted, tol());
            assert!(
                warm.point.dist(fresh.point) <= 1e-6,
                "{class} seed {seed}: warm start diverged after contraction"
            );
        }
    }
}
