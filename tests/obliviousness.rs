//! Obliviousness and anonymity checks (Section II of the paper).
//!
//! The robots have no persistent memory: the destination may depend only
//! on the current snapshot. The trait shape enforces statelessness per
//! call (`&self`); these tests verify the stronger behavioural property —
//! a *fresh* algorithm instance, or the same instance asked twice, or a
//! different robot standing at the same location, always computes the
//! same destination.

use gather_config::{Class, Configuration};
use gather_geom::Point;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;

#[test]
fn fresh_instances_agree_mid_run() {
    let pts = workloads::of_class(Class::Asymmetric, 8, 3);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(2))
        .motion(RandomStops::new(0.4, 5))
        .frames(FramePolicy::GlobalFrame)
        .build();
    let reference = WaitFreeGather::default();
    for _ in 0..50 {
        if engine.is_gathered() {
            break;
        }
        // Before stepping, every location's destination computed by a
        // freshly constructed instance must match another fresh instance
        // (and, transitively, whatever the engine's internal copy did).
        let config = engine.configuration();
        for p in config.distinct_points() {
            let snap = Snapshot::new(config.clone(), p);
            let d1 = reference.destination(&snap);
            let d2 = WaitFreeGather::default().destination(&snap);
            assert_eq!(d1, d2, "statefulness detected at {p}");
        }
        engine.step();
    }
}

#[test]
fn repeated_queries_are_idempotent() {
    let pts = workloads::of_class(Class::QuasiRegular, 7, 9);
    let config = Configuration::canonical(pts, gather_geom::Tol::default());
    let alg = WaitFreeGather::default();
    let p = config.distinct_points()[0];
    let snap = Snapshot::new(config, p);
    let first = alg.destination(&snap);
    for _ in 0..10 {
        assert_eq!(alg.destination(&snap), first);
    }
}

#[test]
fn anonymity_colocated_robots_get_identical_orders() {
    // Robots are indistinguishable: two robots on the same location (and
    // the same frame) must receive the same destination — the algorithm
    // cannot tell them apart.
    let heavy = Point::new(1.0, 2.0);
    let pts = vec![
        heavy,
        heavy,
        heavy,
        Point::new(5.0, 2.0),
        Point::new(1.0, 7.0),
        Point::new(-4.0, -1.0),
    ];
    let config = Configuration::new(pts);
    let alg = WaitFreeGather::default();
    let snap = Snapshot::new(config, heavy);
    // All three robots at `heavy` observe this same snapshot.
    let d = alg.destination(&snap);
    for _ in 0..3 {
        assert_eq!(alg.destination(&snap), d);
    }
}

#[test]
fn history_cannot_leak_through_the_engine() {
    // Two engines whose executions pass through the same configuration at
    // different round numbers must behave identically from that point on
    // (no hidden time or history dependence). Construct this by running
    // one engine 0 rounds and another that reaches the same state after a
    // no-op round (empty activation).
    let pts = workloads::of_class(Class::Multiple, 6, 11);
    let mut idle_first = Engine::builder(pts.clone())
        .algorithm(WaitFreeGather::default())
        .scheduler(FnScheduler::new(
            "idle-then-full",
            |round, alive: &[bool]| {
                if round == 0 {
                    Vec::new() // nobody moves in round 0
                } else {
                    (0..alive.len()).collect()
                }
            },
        ))
        .frames(FramePolicy::GlobalFrame)
        .build();
    let mut direct = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(EveryRobot)
        .frames(FramePolicy::GlobalFrame)
        .build();
    idle_first.step(); // the idle round
    idle_first.step(); // first real round
    direct.step(); // first real round
    assert_eq!(idle_first.positions(), direct.positions());
}
