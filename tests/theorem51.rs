//! Integration test of the paper's main result (Theorem 5.1): starting
//! from any initial configuration except the bivalent one, WAIT-FREE-GATHER
//! gathers all correct robots, for any `f ≤ n − 1` crash faults, under any
//! fair scheduler and any motion adversary.
//!
//! The proof quantifies over all adversaries; the test samples the extreme
//! points of the adversary space (fully synchronous / serialised / random
//! activation × full / δ-only / random motion × crash patterns) across all
//! five gatherable classes and several team sizes.

use gather_config::Class;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;

const GATHERABLE: [Class; 5] = [
    Class::Multiple,
    Class::Collinear1W,
    Class::Collinear2W,
    Class::QuasiRegular,
    Class::Asymmetric,
];

/// Builds an engine for one scenario; scheduler/motion are chosen by index
/// so the matrix stays readable at call sites.
fn run_scenario(
    class: Class,
    n: usize,
    f: usize,
    scheduler_id: usize,
    motion_id: usize,
    seed: u64,
    max_rounds: u64,
) -> (RunOutcome, Vec<String>) {
    let pts = workloads::of_class(class, n, seed);
    let n_actual = pts.len();
    let f = f.min(n_actual - 1);
    let mut builder = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .crash_plan(CrashAtRounds::new(
            (0..f).map(|i| (i as u64 * 3, i)).collect(),
        ))
        .frames(FramePolicy::RandomPerActivation { seed });
    builder = match scheduler_id {
        0 => builder.scheduler(EveryRobot),
        1 => builder.scheduler(RoundRobin::new(2)),
        2 => builder.scheduler(SequentialSingle::new()),
        _ => builder.scheduler(RandomSubsets::new(0.4, 4 * n_actual as u64, seed)),
    };
    builder = match motion_id {
        0 => builder.motion(FullMotion),
        1 => builder.motion(AlwaysDelta),
        _ => builder.motion(RandomStops::new(0.3, seed)),
    };
    let mut engine = builder.delta(0.05).build();
    let outcome = engine.run(max_rounds);
    (outcome, engine.violations().to_vec())
}

#[test]
fn gathers_from_every_class_fault_free() {
    for class in GATHERABLE {
        for seed in [1, 2] {
            let (outcome, violations) = run_scenario(class, 8, 0, 0, 0, seed, 30_000);
            assert!(outcome.gathered(), "{class} seed {seed}: {outcome:?}");
            assert!(violations.is_empty(), "{class}: {violations:?}");
        }
    }
}

#[test]
fn gathers_with_single_crash() {
    for class in GATHERABLE {
        let (outcome, violations) = run_scenario(class, 8, 1, 1, 2, 3, 30_000);
        assert!(outcome.gathered(), "{class}: {outcome:?}");
        assert!(violations.is_empty(), "{class}: {violations:?}");
    }
}

#[test]
fn gathers_with_half_crashed() {
    for class in GATHERABLE {
        let (outcome, violations) = run_scenario(class, 8, 4, 1, 2, 5, 30_000);
        assert!(outcome.gathered(), "{class}: {outcome:?}");
        assert!(violations.is_empty(), "{class}: {violations:?}");
    }
}

#[test]
fn gathers_with_all_but_one_crashed() {
    for class in GATHERABLE {
        for seed in [7, 8] {
            let (outcome, violations) = run_scenario(class, 8, 7, 0, 2, seed, 30_000);
            assert!(outcome.gathered(), "{class} seed {seed}: {outcome:?}");
            assert!(violations.is_empty(), "{class}: {violations:?}");
        }
    }
}

#[test]
fn gathers_under_serialised_scheduler() {
    for class in GATHERABLE {
        let (outcome, violations) = run_scenario(class, 6, 2, 2, 0, 11, 60_000);
        assert!(outcome.gathered(), "{class}: {outcome:?}");
        assert!(violations.is_empty(), "{class}: {violations:?}");
    }
}

#[test]
fn gathers_under_stingy_motion_adversary() {
    // δ-only movement: progress is slow but guaranteed.
    for class in GATHERABLE {
        let (outcome, violations) = run_scenario(class, 6, 2, 0, 1, 13, 60_000);
        assert!(outcome.gathered(), "{class}: {outcome:?}");
        assert!(violations.is_empty(), "{class}: {violations:?}");
    }
}

#[test]
fn gathers_under_random_everything() {
    for class in GATHERABLE {
        for seed in [17, 23] {
            let (outcome, violations) = run_scenario(class, 9, 3, 3, 2, seed, 60_000);
            assert!(outcome.gathered(), "{class} seed {seed}: {outcome:?}");
            assert!(violations.is_empty(), "{class}: {violations:?}");
        }
    }
}

#[test]
fn gathers_various_team_sizes() {
    for n in [4usize, 5, 12, 16] {
        for class in GATHERABLE {
            let (outcome, violations) = run_scenario(class, n, n / 2, 1, 2, 29, 60_000);
            assert!(outcome.gathered(), "{class} n={n}: {outcome:?}");
            assert!(violations.is_empty(), "{class} n={n}: {violations:?}");
        }
    }
}

#[test]
fn gathers_from_generic_workloads() {
    // Random scatter, clusters, grids — whatever class they land in.
    let workloads: Vec<(&str, Vec<gather_geom::Point>)> = vec![
        ("scatter-6", workloads::random_scatter(6, 8.0, 31)),
        ("scatter-11", workloads::random_scatter(11, 8.0, 37)),
        ("clusters", workloads::clusters(9, 3, 41)),
        ("grid", workloads::grid(3, 3, 2.0)),
        ("ring+center", workloads::ring_with_center(7, 1, 4.0)),
        ("quasi", workloads::quasi_regular(3, 2, 43)),
    ];
    for (name, pts) in workloads {
        let n = pts.len();
        let mut engine = Engine::builder(pts)
            .algorithm(WaitFreeGather::default())
            .crash_plan(RandomCrashes::new(n / 3, 0.1, 47))
            .scheduler(RoundRobin::new(3))
            .motion(RandomStops::new(0.5, 53))
            .build();
        let outcome = engine.run(60_000);
        assert!(outcome.gathered(), "workload {name}: {outcome:?}");
        assert!(
            engine.violations().is_empty(),
            "workload {name}: {:?}",
            engine.violations()
        );
    }
}

#[test]
fn gathering_point_hosts_all_live_robots() {
    let pts = workloads::of_class(Class::Asymmetric, 8, 61);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .crash_plan(CrashAtRounds::new(vec![(2, 0), (4, 1), (6, 2)]))
        .build();
    let outcome = engine.run(30_000);
    let RunOutcome::Gathered { point, .. } = outcome else {
        panic!("did not gather: {outcome:?}");
    };
    for (i, (p, alive)) in engine.positions().iter().zip(engine.alive()).enumerate() {
        if *alive {
            assert!(p.within(point, 1e-6), "live robot {i} at {p}, not {point}");
        }
    }
}

#[test]
fn crash_timing_targeting_the_elected_leader() {
    // Adaptive adversary: whenever possible, crash a robot located at the
    // current "attractor" (max multiplicity or safe-point winner) — the
    // paper's algorithm must survive the leader dying repeatedly.
    use gather_config::{classify, Configuration};
    use gather_geom::Tol;
    let pts = workloads::of_class(Class::Asymmetric, 9, 67);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .crash_plan(TargetedCrashes::new(
            "leader-killer",
            6,
            |round, config: &Configuration, alive: &[bool]| {
                if round % 4 != 0 {
                    return Vec::new();
                }
                let analysis = classify(config, Tol::default());
                let Some(target) = analysis.target else {
                    return Vec::new();
                };
                config
                    .points()
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| alive[*i] && p.within(target, 1e-6))
                    .map(|(i, _)| i)
                    .take(1)
                    .collect()
            },
        ))
        .scheduler(RoundRobin::new(2))
        .build();
    let outcome = engine.run(60_000);
    assert!(outcome.gathered(), "{outcome:?}");
    assert!(engine.violations().is_empty(), "{:?}", engine.violations());
}
