//! Invariant audits over full executions — the claims inside the paper's
//! proofs, checked on every round of real runs:
//!
//! * Lemma 5.1 (wait-freeness): at most one occupied location may be
//!   instructed to stay (monitored online by the engine);
//! * Lemmas 5.3–5.9 (class-transition structure): `M` never leaves `M`,
//!   `L1W → {M, L1W}`, `QR → {M, L1W, QR}`, `A → {M, L1W, QR, A}`,
//!   `L2W` never transitions to `B`, and nothing ever enters `B`;
//! * Lemma 5.6, Claim C2 (potential function): in class `A`, the pair
//!   `φ = (max multiplicity ↑, Σ distances to the elected point ↓)`
//!   improves whenever the configuration changes;
//! * Weber-point invariance (Lemma 3.2): in `QR`/`L1W` runs the target
//!   stays put while robots move toward it.

use gather_config::{classify, Class, Configuration};
use gather_geom::{Point, Tol};
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::{rules, WaitFreeGather};
use std::collections::BTreeSet;

/// The transition edges allowed by the paper's lemmas. `from == to` is
/// always allowed and not listed.
fn allowed(from: Class, to: Class) -> bool {
    use Class::*;
    match from {
        Multiple => false,                     // M is absorbing
        Collinear1W => matches!(to, Multiple), // L1W → M
        QuasiRegular => matches!(to, Multiple | Collinear1W),
        Asymmetric => matches!(to, Multiple | Collinear1W | QuasiRegular),
        Collinear2W => to != Bivalent, // anything but B
        Bivalent => to != Bivalent,    // out of contract
    }
}

fn run_and_collect(pts: Vec<Point>, f: usize, seed: u64) -> (Engine, RunOutcome) {
    let n = pts.len();
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(2))
        .motion(RandomStops::new(0.4, seed))
        .crash_plan(RandomCrashes::new(f.min(n - 1), 0.08, seed))
        .build();
    let outcome = engine.run(60_000);
    (engine, outcome)
}

#[test]
fn class_transitions_respect_the_lemmas() {
    for class in [
        Class::Multiple,
        Class::Collinear1W,
        Class::Collinear2W,
        Class::QuasiRegular,
        Class::Asymmetric,
    ] {
        for seed in [3, 5, 9] {
            let pts = workloads::of_class(class, 8, seed);
            let (engine, outcome) = run_and_collect(pts, 3, seed);
            assert!(outcome.gathered(), "{class} seed {seed}: {outcome:?}");
            for ((from, to), count) in engine.trace().class_transitions() {
                assert!(
                    allowed(from, to),
                    "{class} seed {seed}: illegal transition {from}→{to} (×{count})"
                );
            }
        }
    }
}

#[test]
fn no_execution_ever_enters_bivalent() {
    let mut starts: Vec<Vec<Point>> = Vec::new();
    for seed in 0..6 {
        starts.push(workloads::random_scatter(8, 8.0, seed));
        starts.push(workloads::random_scatter(6, 8.0, seed + 100));
    }
    // Near-miss start: a 4-vs-3 split (class M, one robot away from B).
    let a = Point::new(0.0, 0.0);
    let b = Point::new(6.0, 0.0);
    let mut near = vec![a; 4];
    near.extend(vec![b; 3]);
    starts.push(near);

    for (i, pts) in starts.into_iter().enumerate() {
        let (engine, outcome) = run_and_collect(pts, 4, i as u64);
        assert!(outcome.gathered(), "start {i}: {outcome:?}");
        for record in engine.trace().records() {
            assert_ne!(
                record.class,
                Class::Bivalent,
                "start {i} entered B at round {}",
                record.round
            );
        }
        assert!(
            engine.violations().is_empty(),
            "start {i}: {:?}",
            engine.violations()
        );
    }
}

#[test]
fn engine_monitors_stay_silent_on_wfg() {
    // The engine's own Lemma 5.1 + never-B monitors across a matrix of runs.
    for class in [Class::Multiple, Class::QuasiRegular, Class::Asymmetric] {
        for seed in [1, 4] {
            let pts = workloads::of_class(class, 10, seed);
            let (engine, outcome) = run_and_collect(pts, 5, seed);
            assert!(outcome.gathered());
            assert!(
                engine.violations().is_empty(),
                "{class} seed {seed}: {:?}",
                engine.violations()
            );
        }
    }
}

#[test]
fn asymmetric_potential_function_improves() {
    // Claim C2 of Lemma 5.6: while the execution stays in class A with
    // every robot heading to the elected point, (max multiplicity) never
    // decreases, and when it stays equal the sum of distances to the
    // elected point never increases (strictly decreases when anything
    // moved).
    let tol = Tol::default();
    let pts = workloads::asymmetric(9, 21);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(3))
        .motion(RandomStops::new(0.3, 7))
        .build();

    let mut prev: Option<(usize, f64, Configuration)> = None;
    for _ in 0..10_000 {
        let config = engine.configuration();
        let analysis = classify(&config, tol);
        if analysis.class != Class::Asymmetric {
            break;
        }
        let elected = rules::asymmetric::elected_point(&config, tol);
        let mult = config.mult(elected, tol);
        let sum: f64 = config.sum_of_distances(elected);
        if let Some((pmult, psum, pconfig)) = &prev {
            if *pconfig != config {
                assert!(
                    mult > *pmult || (mult == *pmult && sum < *psum + 1e-9),
                    "φ worsened: mult {pmult}→{mult}, sum {psum}→{sum}"
                );
            }
        }
        prev = Some((mult, sum, config));
        if engine.is_gathered() {
            break;
        }
        engine.step();
    }
}

#[test]
fn weber_target_is_invariant_during_qr_runs() {
    // Lemma 3.2 along a real execution: while the class stays QR, the
    // classification target must not move (beyond numeric noise).
    let tol = Tol::default();
    let pts = workloads::biangular(4, 0.5, 2.0, 4.0);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(2))
        .motion(RandomStops::new(0.3, 17))
        .build();
    let mut first_target: Option<Point> = None;
    for _ in 0..5_000 {
        let config = engine.configuration();
        let analysis = classify(&config, tol);
        if analysis.class != Class::QuasiRegular {
            break;
        }
        let target = analysis.target.expect("QR target");
        if let Some(t0) = first_target {
            assert!(
                target.dist(t0) < 1e-4,
                "Weber target drifted: {t0} → {target}"
            );
        } else {
            first_target = Some(target);
        }
        if engine.is_gathered() {
            break;
        }
        engine.step();
    }
    assert!(first_target.is_some(), "run never classified as QR");
}

#[test]
fn l1w_median_is_invariant_during_linear_runs() {
    let tol = Tol::default();
    let pts = workloads::collinear_1w(9, 33);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(SequentialSingle::new())
        .motion(AlwaysDelta)
        .delta(0.05)
        .build();
    let mut first_target: Option<Point> = None;
    for _ in 0..20_000 {
        let config = engine.configuration();
        let analysis = classify(&config, tol);
        if analysis.class != Class::Collinear1W {
            break;
        }
        let target = analysis.target.expect("L1W target");
        if let Some(t0) = first_target {
            assert!(target.dist(t0) < 1e-6, "median drifted: {t0} → {target}");
        } else {
            first_target = Some(target);
        }
        if engine.is_gathered() {
            break;
        }
        engine.step();
    }
    assert!(first_target.is_some());
}

#[test]
fn multiplicity_point_is_stable_in_class_m() {
    // Claim C1 of Lemma 5.3: once a unique max-multiplicity point exists,
    // it remains THE max-multiplicity point for the rest of the run.
    let tol = Tol::default();
    let pts = workloads::multiple(10, 3, 13);
    let target = Point::new(0.0, 0.0); // generator stacks at the origin
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(3))
        .motion(RandomStops::new(0.2, 3))
        .crash_plan(RandomCrashes::new(4, 0.05, 5))
        .build();
    for _ in 0..10_000 {
        if engine.is_gathered() {
            break;
        }
        engine.step();
        let config = engine.configuration();
        let (p, _) = config
            .unique_max_multiplicity()
            .expect("class M lost its unique maximum");
        assert!(
            p.within(target, tol.snap),
            "max-multiplicity point moved to {p}"
        );
    }
    assert!(engine.is_gathered());
}

#[test]
fn no_accidental_merges_away_from_the_target_in_class_m() {
    // The stronger statement inside Claim C1: robots at distinct locations
    // never merge anywhere except at the target.
    let pts = workloads::multiple(8, 2, 19);
    let target = Point::new(0.0, 0.0);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .motion(RandomStops::new(0.5, 23))
        .build();
    let mut prev_distinct: BTreeSet<(i64, i64)> = BTreeSet::new();
    for _ in 0..10_000 {
        if engine.is_gathered() {
            break;
        }
        engine.step();
        let config = engine.configuration();
        let distinct: Vec<(Point, usize)> = config.distinct();
        // Any location (≠ target) with multiplicity ≥ 2 must have existed
        // with that multiplicity before (merges only happen at the target).
        let mut current = BTreeSet::new();
        for (p, m) in &distinct {
            if !p.within(target, 1e-6) && *m >= 2 {
                let key = ((p.x * 1e6) as i64, (p.y * 1e6) as i64);
                current.insert(key);
                assert!(
                    prev_distinct.contains(&key),
                    "new multiplicity point appeared at {p} (mult {m})"
                );
            }
        }
        prev_distinct = current;
    }
}
