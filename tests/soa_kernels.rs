//! SoA kernel ↔ scalar reference agreement (DESIGN.md §10).
//!
//! Every chunked structure-of-arrays kernel in `gather_geom::soa` must
//! agree with its scalar array-of-structs reference (`soa::reference`) to
//! within 1e-12 relative error on configurations drawn from **all six**
//! paper classes — the kernels are a performance refactor, not a semantic
//! change. Angle keys and the SEC/hull entry points are held to the
//! stronger standard of bitwise equality, because classification and the
//! zone geometry consume them verbatim.

use gather_config::Class;
use gather_geom::{
    convex_hull, smallest_enclosing_circle, smallest_enclosing_circle_soa,
    soa::{self, reference, PointBuffer},
    Point,
};
use gather_prng::Rng;
use gather_workloads as workloads;

const SEEDS: u64 = 4;
const SIZES: [usize; 3] = [6, 13, 32];

/// Maximum tolerated relative error between kernel and reference.
const TOL: f64 = 1e-12;

fn close(kernel: f64, reference: f64, what: &str, ctx: &str) {
    let scale = reference.abs().max(1.0);
    assert!(
        (kernel - reference).abs() <= TOL * scale,
        "{what} diverged for {ctx}: kernel {kernel} vs reference {reference}"
    );
}

/// Every (class, seed, size) configuration plus a few query points drawn
/// around it: the current centroid, an off-centre point, and each of the
/// first few configuration points (exercising the coincident branch).
fn for_each_case(mut check: impl FnMut(&str, &[Point], Point)) {
    for n in SIZES {
        for (class, seed, pts) in workloads::class_sweep(n, SEEDS) {
            let ctx = format!("class {class} seed {seed} n {n}");
            let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(n as u64));
            let centroid = reference::centroid(&pts);
            let jitter = Point::new(
                centroid.x + rng.random_range(-300i32..300) as f64 / 100.0,
                centroid.y + rng.random_range(-300i32..300) as f64 / 100.0,
            );
            let mut queries = vec![centroid, jitter];
            queries.extend(pts.iter().take(3).copied());
            for q in queries {
                check(&ctx, &pts, q);
            }
        }
    }
}

#[test]
fn sum_distances_matches_reference() {
    for_each_case(|ctx, pts, q| {
        let buf = PointBuffer::from_points(pts);
        close(
            soa::sum_distances(&buf, q),
            reference::sum_distances(pts, q),
            "sum_distances",
            ctx,
        );
    });
}

#[test]
fn weiszfeld_sums_match_reference() {
    for eps in [0.0, 1e-9] {
        for_each_case(|ctx, pts, q| {
            let buf = PointBuffer::from_points(pts);
            let k = soa::weiszfeld_sums(&buf, q, eps);
            let r = reference::weiszfeld_sums(pts, q, eps);
            assert_eq!(k.coincident, r.coincident, "coincident count for {ctx}");
            close(k.denom, r.denom, "weiszfeld denom", ctx);
            if k.denom > 0.0 {
                let kt = k.target();
                let rt = r.target();
                close(kt.x, rt.x, "weiszfeld target.x", ctx);
                close(kt.y, rt.y, "weiszfeld target.y", ctx);
            }
            let (kp, rp) = (k.pull(), r.pull());
            close(kp.x, rp.x, "weiszfeld pull.x", ctx);
            close(kp.y, rp.y, "weiszfeld pull.y", ctx);
        });
    }
}

#[test]
fn centroid_and_max_dist_match_reference() {
    for_each_case(|ctx, pts, q| {
        let buf = PointBuffer::from_points(pts);
        let kc = soa::centroid(&buf);
        let rc = reference::centroid(pts);
        close(kc.x, rc.x, "centroid.x", ctx);
        close(kc.y, rc.y, "centroid.y", ctx);
        let (ki, kd) = soa::max_dist2(&buf, q);
        let (ri, rd) = reference::max_dist2(pts, q);
        assert_eq!(ki, ri, "max_dist2 argmax index for {ctx}");
        close(kd, rd, "max_dist2 distance²", ctx);
    });
}

#[test]
fn radial_pull_matches_reference() {
    for zone in [0.0, 0.5, 2.0] {
        for_each_case(|ctx, pts, q| {
            let buf = PointBuffer::from_points(pts);
            let (kv, km) = soa::radial_pull(&buf, q, zone);
            let (rv, rm) = reference::radial_pull(pts, q, zone);
            assert_eq!(km, rm, "radial_pull zone count for {ctx} zone {zone}");
            close(kv.x, rv.x, "radial_pull.x", ctx);
            close(kv.y, rv.y, "radial_pull.y", ctx);
        });
    }
}

#[test]
fn angle_keys_are_bitwise_identical_to_reference() {
    for zone in [0.0, 1.0] {
        for_each_case(|ctx, pts, q| {
            let buf = PointBuffer::from_points(pts);
            let (mut kernel, mut scalar) = (Vec::new(), Vec::new());
            soa::angle_keys_into(&buf, q, zone, &mut kernel);
            reference::angle_keys_into(pts, q, zone, &mut scalar);
            assert_eq!(kernel, scalar, "angle keys for {ctx} zone {zone}");
        });
    }
}

#[test]
fn sec_and_hull_soa_entry_points_are_bitwise_identical() {
    for_each_case(|ctx, pts, _q| {
        let buf = PointBuffer::from_points(pts);
        assert_eq!(
            smallest_enclosing_circle_soa(&buf),
            smallest_enclosing_circle(pts),
            "SEC for {ctx}"
        );
        assert_eq!(
            gather_geom::convex_hull_soa(&buf),
            convex_hull(pts),
            "hull for {ctx}"
        );
    });
}

#[test]
fn kernels_cover_every_class() {
    // Guard the premise of this file: the sweep really visits all six
    // classes, so a regression in a generator can't silently shrink the
    // coverage above.
    let classes: std::collections::BTreeSet<Class> = workloads::class_sweep(8, 1)
        .into_iter()
        .map(|(c, _, _)| c)
        .collect();
    assert_eq!(classes.len(), Class::all().len());
}
