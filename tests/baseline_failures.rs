//! The negative results that motivate the paper (Section I), demonstrated
//! empirically:
//!
//! * classic non-wait-free gathering deadlocks after one crash;
//! * the bivalent configuration defeats every anonymous deterministic
//!   algorithm under the symmetry-preserving adversary (Lemma 5.2);
//! * the baselines do not cover arbitrary initial configurations.

use gather_config::{classify, Class, Configuration};
use gather_geom::{Point, Tol};
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::{AgmonPelegStyle, CenterOfGravity, OrderedMarch, WaitFreeGather, WeberOracle};

#[test]
fn ordered_march_gathers_fault_free() {
    let pts = workloads::random_scatter(6, 8.0, 5);
    let mut engine = Engine::builder(pts)
        .algorithm(OrderedMarch::default())
        .check_invariants(false) // it is not wait-free by design
        .build();
    let outcome = engine.run(30_000);
    assert!(outcome.gathered(), "{outcome:?}");
}

#[test]
fn ordered_march_deadlocks_when_the_walker_crashes() {
    // The designated walker is the robot closest to the rally point; crash
    // it at the start. Everyone else waits forever: a deadlock the paper's
    // introduction describes verbatim.
    let pts = workloads::multiple(6, 3, 7);
    let config = Configuration::new(pts.clone());
    let rally = config.unique_max_multiplicity().unwrap().0;
    // Find the index of the closest non-rally robot (the designated one).
    let walker = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.within(rally, 1e-9))
        .min_by(|(_, p), (_, q)| p.dist(rally).total_cmp(&q.dist(rally)))
        .map(|(i, _)| i)
        .unwrap();
    let mut engine = Engine::builder(pts)
        .algorithm(OrderedMarch::default())
        .crash_plan(CrashAtRounds::at_start([walker]))
        .check_invariants(false)
        .build();
    let outcome = engine.run(5_000);
    assert!(
        !outcome.gathered(),
        "ordered march should deadlock: {outcome:?}"
    );
    // And the positions literally never changed after the crash.
    assert_eq!(engine.trace().total_travel(), 0.0);
}

#[test]
fn wait_free_gather_survives_the_same_crash() {
    let pts = workloads::multiple(6, 3, 7);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .crash_plan(CrashAtRounds::at_start([3]))
        .build();
    let outcome = engine.run(30_000);
    assert!(outcome.gathered(), "{outcome:?}");
}

/// Drives an algorithm from a bivalent start under the group-serialising
/// adversary of Lemma 5.2: only one of the two co-located groups is
/// activated per round (alternating, so the schedule is fair). Whatever
/// common destination the anonymous algorithm computes, the activated
/// group lands on it *together* while the other group stands still — the
/// robots remain split into two equal groups forever. (Full simultaneous
/// activation would NOT work as an adversary: once both groups are within
/// the minimum step δ of a common destination, the model forces exact
/// arrival and the robots gather — the adversary must serialise.)
///
/// In exact arithmetic the separation halves each round but never reaches
/// zero — convergence without gathering. Floating point cannot run
/// "forever" (positions merge at the snap radius), so the test runs while
/// the separation stays far above the float floor and asserts the bivalent
/// invariant holds at every single round.
fn assert_stays_bivalent(algorithm: impl Algorithm + 'static, label: &str) {
    let initial_separation = 8.0;
    let pts = workloads::bivalent(8, initial_separation);
    let half = pts.len() / 2;
    let mut engine = Engine::builder(pts)
        .algorithm(algorithm)
        .scheduler(FnScheduler::new(
            "alternate-groups",
            move |round, alive: &[bool]| {
                let range = if round % 2 == 0 {
                    0..half
                } else {
                    half..alive.len()
                };
                range.filter(|i| alive[*i]).collect()
            },
        ))
        .frames(FramePolicy::GlobalFrame)
        .check_invariants(false)
        .build();
    let mut previous_sep = initial_separation;
    // 12 halvings: separation ≥ 8/2¹² ≈ 2·10⁻³, still ≫ snap (10⁻⁶).
    for round in 0..12 {
        assert!(!engine.is_gathered(), "{label}: gathered at round {round}");
        engine.step();
        let config = engine.configuration();
        assert_eq!(
            classify(&config, Tol::default()).class,
            Class::Bivalent,
            "{label}: left the bivalent class at round {round}: {config}"
        );
        let distinct = config.distinct_points();
        let sep = distinct[0].dist(distinct[1]);
        assert!(sep > 0.0, "{label}: groups coincided at round {round}");
        assert!(
            sep < previous_sep,
            "{label}: separation did not shrink (convergence is allowed, \
             escape is not)"
        );
        previous_sep = sep;
    }
    // Geometric decay, never zero: the signature of convergence-without-
    // gathering.
    assert!(previous_sep > initial_separation / 2.0_f64.powi(13));
}

#[test]
fn bivalent_defeats_every_algorithm() {
    // Lemma 5.2: under the symmetric adversary no anonymous deterministic
    // algorithm escapes the bivalent trap — the split survives every round.
    assert_stays_bivalent(WaitFreeGather::default(), "wait-free-gather");
    assert_stays_bivalent(CenterOfGravity::new(), "center-of-gravity");
    assert_stays_bivalent(AgmonPelegStyle::default(), "agmon-peleg");
    assert_stays_bivalent(WeberOracle::default(), "weber-oracle");
}

#[test]
fn wfg_handles_multi_multiplicity_starts_that_break_the_classics() {
    // Arbitrary initial configurations: three stacks of robots (no unique
    // max). The classic algorithms assume distinct starts; WFG must gather.
    let heavy1 = Point::new(0.0, 0.0);
    let heavy2 = Point::new(6.0, 0.0);
    let heavy3 = Point::new(2.0, 5.0);
    let pts = vec![
        heavy1,
        heavy1,
        heavy2,
        heavy2,
        heavy3,
        heavy3,
        Point::new(3.0, 1.0),
    ];
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(2))
        .motion(RandomStops::new(0.4, 3))
        .crash_plan(RandomCrashes::new(2, 0.05, 9))
        .build();
    let outcome = engine.run(30_000);
    assert!(outcome.gathered(), "{outcome:?}");
    assert!(engine.violations().is_empty(), "{:?}", engine.violations());
}

#[test]
fn center_of_gravity_stalls_under_adversarial_stops_longer_than_wfg() {
    // CoG's target drifts with every partial move; WFG's per-class targets
    // are invariant. Compare rounds-to-gather under the same adversary.
    let pts = workloads::random_scatter(8, 8.0, 13);
    let run = |alg: Box<dyn Algorithm>| {
        let mut engine = Engine::builder(pts.clone())
            .algorithm(alg)
            .motion(AlwaysDelta)
            .delta(0.05)
            .check_invariants(false)
            .build();
        engine.run(200_000)
    };
    let wfg = run(Box::<WaitFreeGather>::default());
    let cog = run(Box::new(CenterOfGravity::new()));
    assert!(wfg.gathered(), "WFG failed: {wfg:?}");
    // CoG may or may not finish; if it does, it must not beat WFG by much —
    // the qualitative claim is that WFG is competitive despite exactness.
    if cog.gathered() {
        assert!(
            wfg.rounds() <= cog.rounds() * 20,
            "WFG {} rounds vs CoG {} rounds",
            wfg.rounds(),
            cog.rounds()
        );
    }
}

#[test]
fn unbalanced_two_point_split_is_gatherable() {
    // The counterpart to the bivalent impossibility: a 5-vs-3 split over
    // two points is class M and WFG gathers it even under the same
    // symmetric adversary — only the *exactly equal* split is deadly,
    // which is why strong multiplicity detection is necessary.
    let a = Point::new(0.0, 0.0);
    let b = Point::new(8.0, 0.0);
    let mut pts = vec![a; 5];
    pts.extend(vec![b; 3]);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .motion(SymmetricHalfStops)
        .frames(FramePolicy::GlobalFrame)
        .build();
    let outcome = engine.run(10_000);
    assert!(outcome.gathered(), "{outcome:?}");
    assert!(engine.violations().is_empty(), "{:?}", engine.violations());
}
