//! Byzantine-fault experiments beyond the paper's crash model.
//!
//! The paper's introduction cites Agmon & Peleg: byzantine faults are
//! strictly harder than crashes — a single byzantine robot already defeats
//! 3-robot gathering. These tests check the simulator's byzantine
//! machinery and chart WAIT-FREE-GATHER's behaviour: it tolerates
//! crash-like and noise-like byzantine behaviour, while a targeted
//! stack-stalker can keep small teams from ever stabilising.

use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;

#[test]
fn statue_byzantine_is_equivalent_to_a_crash() {
    // A byzantine robot that never moves is behaviourally a crashed robot:
    // WFG must gather the correct robots regardless.
    let pts = workloads::random_scatter(7, 8.0, 3);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .byzantine(0, Statue)
        .byzantine(3, Statue)
        .build();
    let outcome = engine.run(30_000);
    assert!(outcome.gathered(), "{outcome:?}");
    assert_eq!(engine.correct_count(), 5);
}

#[test]
fn wanderer_does_not_stop_a_large_team() {
    // One noisy byzantine robot among 8: the correct robots end up forming
    // a multiplicity the wanderer cannot outweigh, and the M rule ignores
    // everything else.
    let pts = workloads::random_scatter(8, 8.0, 11);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .byzantine(2, Wanderer::new(6.0, 5))
        .scheduler(RoundRobin::new(3))
        .build();
    let outcome = engine.run(60_000);
    assert!(outcome.gathered(), "{outcome:?}");
}

#[test]
fn fugitive_cannot_prevent_gathering_of_the_rest() {
    let pts = workloads::random_scatter(8, 8.0, 13);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .byzantine(5, Fugitive)
        .build();
    let outcome = engine.run(60_000);
    assert!(outcome.gathered(), "{outcome:?}");
}

#[test]
fn byzantine_robot_is_excluded_from_the_gathered_predicate() {
    let pts = workloads::random_scatter(6, 8.0, 17);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .byzantine(1, Fugitive)
        .build();
    let outcome = engine.run(60_000);
    let RunOutcome::Gathered { point, .. } = outcome else {
        panic!("did not gather: {outcome:?}");
    };
    // The fugitive is far away; the correct robots share the point.
    for i in 0..engine.positions().len() {
        if engine.is_correct(i) {
            assert!(engine.positions()[i].within(point, 1e-6));
        }
    }
    assert!(
        !engine.positions()[1].within(point, 1e-6),
        "fugitive joined?"
    );
}

#[test]
fn stack_stalker_harasses_small_teams() {
    // With n = 3 and one byzantine stalker, gathering of the 2 correct
    // robots is at the adversary's mercy (cf. the Agmon–Peleg byzantine
    // impossibility for n = 3). We assert only the *mechanism*: the run
    // does not crash, the stalker keeps moving, and if the team does not
    // gather within the budget the stalker is the reason (correct robots
    // are chasing reshuffled targets).
    let pts = workloads::random_scatter(3, 6.0, 19);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .byzantine(0, StackStalker)
        .scheduler(EveryRobot)
        .check_invariants(false)
        .build();
    let outcome = engine.run(2_000);
    let travel = engine.trace().total_travel();
    assert!(travel > 0.0, "nothing ever moved");
    // Either outcome is legitimate; the point is the harness supports the
    // byzantine model end-to-end.
    let _ = outcome;
}

#[test]
fn crashes_and_byzantine_combine() {
    let pts = workloads::random_scatter(9, 8.0, 23);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .byzantine(4, Wanderer::new(5.0, 7))
        .crash_plan(CrashAtRounds::at_start([0, 7]))
        .build();
    let outcome = engine.run(60_000);
    assert!(outcome.gathered(), "{outcome:?}");
    assert_eq!(engine.correct_count(), 6);
}
