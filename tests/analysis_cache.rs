//! Properties of the shared round-analysis pipeline (seeded loops, no
//! external property-testing framework — see DESIGN.md §8):
//!
//! * a [`RoundAnalysis`] carries exactly the result of a fresh
//!   [`classify`], across all five classes and across configurations whose
//!   multiplicities only merge after canonicalisation;
//! * the [`AnalysisCache`] is transparent: serving from the memo never
//!   changes the answer, and a perturbed configuration is never served a
//!   stale analysis;
//! * equivariance: handing a robot the *shared* analysis with the target
//!   mapped into its frame produces the same destination as letting the
//!   robot classify its own view from scratch — the soundness condition
//!   for sharing one analysis per round in the ATOM model.

use gather_config::{classify, AnalysisCache, Class, Configuration, RoundAnalysis};
use gather_geom::{Point, Similarity, Tol};
use gather_prng::Rng;
use gather_sim::prelude::{Algorithm, Snapshot};
use gather_workloads as workloads;
use gathering::WaitFreeGather;

fn tol() -> Tol {
    Tol::default()
}

/// A pool of configurations covering every class plus unstructured inputs.
fn gallery(seed: u64) -> Vec<Configuration> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for class in Class::all() {
        for n in [4, 6, 9] {
            out.push(Configuration::new(workloads::of_class(class, n, seed)));
        }
    }
    for n in [3, 5, 8, 13] {
        out.push(Configuration::new(workloads::random_scatter(
            n,
            10.0,
            rng.next_u64(),
        )));
        out.push(Configuration::new(workloads::asymmetric(
            n + 1,
            rng.next_u64(),
        )));
    }
    // Post-canonicalisation multiplicity merges: noisy near-coincident
    // clusters that only become true multiplicities once snapped.
    for n in [6, 10] {
        let mut pts = workloads::random_scatter(n, 8.0, rng.next_u64());
        for i in 0..n / 2 {
            let base = pts[i];
            pts.push(Point::new(base.x + 1e-9, base.y - 1e-9));
        }
        out.push(Configuration::canonical(pts, tol()));
    }
    out
}

#[test]
fn round_analysis_equals_fresh_classify_across_all_classes() {
    for seed in 0..8u64 {
        for config in gallery(seed) {
            let ra = RoundAnalysis::compute(&config, tol());
            let fresh = classify(&config, tol());
            assert_eq!(
                ra.analysis, fresh,
                "shared analysis diverged from fresh classify on {config}"
            );
        }
    }
}

#[test]
fn cache_is_transparent_over_a_perturbation_walk() {
    let mut cache = AnalysisCache::new();
    let mut rng = Rng::seed_from_u64(0xA11A);
    let mut pts = workloads::random_scatter(9, 10.0, 7);
    for step in 0..60 {
        let config = Configuration::canonical(pts.clone(), tol());
        // Ask twice: the second answer must come from the memo and both
        // must equal a from-scratch computation.
        let first = cache.analyse(&config, tol());
        let hits_before = cache.hits();
        let second = cache.analyse(&config, tol());
        assert_eq!(cache.hits(), hits_before + 1, "step {step}: no memo hit");
        let fresh = RoundAnalysis::compute(&config, tol());
        for (label, got) in [("cached", first), ("memo", second)] {
            // The semantic payload must match a cold computation exactly.
            assert_eq!(
                got.analysis, fresh.analysis,
                "step {step}: {label} analysis != fresh"
            );
            assert_eq!(got.sym, fresh.sym, "step {step}: {label} sym != fresh");
            assert_eq!(
                got.fingerprint, fresh.fingerprint,
                "step {step}: {label} fingerprint != fresh"
            );
            // `weber_hint` is the raw Weiszfeld iterate: the cache warm-
            // starts it from the previous round's Weber point (Lemma 3.2)
            // while the fresh computation runs cold, so the two solves may
            // land on different iterates of the same minimum. They must
            // still agree to solver tolerance — the warm-vs-cold
            // equivalence the warm start relies on.
            match (got.weber_hint, fresh.weber_hint) {
                (Some(w), Some(c)) => assert!(
                    w.dist(c) <= 1e-6,
                    "step {step}: {label} warm Weber {w} strayed from cold {c}"
                ),
                (w, c) => assert_eq!(
                    w.is_some(),
                    c.is_some(),
                    "step {step}: {label} and fresh disagree on hint presence"
                ),
            }
        }
        // Perturb one robot; the cache must notice and recompute.
        let i = rng.random_range(0..pts.len());
        pts[i] = Point::new(
            pts[i].x + rng.next_f64() - 0.5,
            pts[i].y + rng.next_f64() - 0.5,
        );
    }
    assert_eq!(cache.hits(), 60);
    assert_eq!(cache.computed(), 60);
}

#[test]
fn shared_analysis_is_equivariant_under_frame_changes() {
    // The engine hands robot frames the global analysis with only the
    // target transformed. Soundness: for every robot and every
    // orientation-preserving similarity, that must agree with the robot
    // classifying its transformed view from scratch.
    let wfg = WaitFreeGather::default();
    for seed in 0..6u64 {
        let mut rng = Rng::seed_from_u64(seed);
        for config in gallery(seed) {
            if config.distinct().len() < 2 {
                continue; // gathered: nothing to compare
            }
            let shared = RoundAnalysis::compute(&config, tol());
            let sim = Similarity::new(
                0.5 + rng.next_f64() * 2.0,
                rng.next_f64() * std::f64::consts::TAU,
                Point::new(rng.next_f64() * 8.0 - 4.0, rng.next_f64() * 8.0 - 4.0),
            );
            let moved = Configuration::new(config.points().iter().map(|p| sim.apply(*p)).collect());
            for me in config.distinct_points() {
                let local_me = sim.apply(me);
                let with_shared = wfg.destination(&Snapshot::with_analysis(
                    moved.clone(),
                    local_me,
                    shared.map_target(|t| sim.apply(t)).analysis,
                ));
                let from_scratch = wfg.destination(&Snapshot::new(moved.clone(), local_me));
                assert!(
                    with_shared.dist(from_scratch) < 1e-5,
                    "seed {seed}, robot {me}: shared-analysis destination \
                     {with_shared} != per-frame destination {from_scratch} \
                     on {moved}"
                );
            }
        }
    }
}
