//! The paper's chirality argument (Section I): configurations with only
//! axial (mirror) symmetry are handled as asymmetric, because the shared
//! clockwise orientation gives mirrored positions different views. These
//! tests run the full algorithm on mirror-symmetric starts.

use gather_config::{classify, rotational_symmetry, Class, Configuration};
use gather_geom::{Point, Tol};
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::{rules, WaitFreeGather};

#[test]
fn axial_configurations_have_trivial_rotational_symmetry() {
    for seed in 0..5 {
        let pts = workloads::axially_symmetric(4, 1, seed);
        let config = Configuration::canonical(pts, Tol::default());
        assert_eq!(
            rotational_symmetry(&config, Tol::default()),
            1,
            "seed {seed}: chirality should break mirror symmetry"
        );
    }
}

#[test]
fn generated_axial_workloads_have_a_detectable_axis() {
    use gather_config::detect_mirror_axis;
    for seed in 0..5 {
        let pts = workloads::axially_symmetric(3, 1, seed);
        let config = Configuration::canonical(pts, Tol::default());
        assert!(
            detect_mirror_axis(&config, Tol::default()).is_some(),
            "seed {seed}: generator lost its mirror axis"
        );
        // …and yet the configuration is class A: chirality sees through
        // the mirror. This pair of assertions is the paper's §I claim.
        assert_eq!(classify(&config, Tol::default()).class, Class::Asymmetric);
    }
}

#[test]
fn mirrored_positions_have_distinct_views() {
    use gather_config::view_of;
    let pts = workloads::axially_symmetric(3, 0, 2);
    let config = Configuration::canonical(pts.clone(), Tol::default());
    // Mirror pairs are adjacent in the generator's output.
    for k in 0..3 {
        let va = view_of(&config, pts[2 * k], Tol::default());
        let vb = view_of(&config, pts[2 * k + 1], Tol::default());
        assert_ne!(va, vb, "mirror pair {k} shares a view — chirality lost");
    }
}

#[test]
fn election_is_unanimous_despite_the_mirror() {
    let pts = workloads::axially_symmetric(4, 1, 3);
    let config = Configuration::canonical(pts, Tol::default());
    assert_eq!(classify(&config, Tol::default()).class, Class::Asymmetric);
    let elected = rules::asymmetric::elected_point(&config, Tol::default());
    for p in config.distinct_points() {
        assert_eq!(
            rules::asymmetric::destination(&config, p, Tol::default()),
            elected
        );
    }
}

#[test]
fn gathering_from_axially_symmetric_starts() {
    for seed in [0u64, 1, 2] {
        let pts = workloads::axially_symmetric(3, 1, seed);
        let n = pts.len();
        let mut engine = Engine::builder(pts)
            .algorithm(WaitFreeGather::default())
            .scheduler(RoundRobin::new(2))
            .motion(RandomStops::new(0.4, seed))
            .crash_plan(RandomCrashes::new(n / 2, 0.05, seed + 1))
            .build();
        let outcome = engine.run(60_000);
        assert!(outcome.gathered(), "seed {seed}: {outcome:?}");
        assert!(engine.violations().is_empty(), "{:?}", engine.violations());
    }
}

#[test]
fn perfect_mirror_with_symmetric_adversary_still_gathers() {
    // Even a motion adversary that preserves the mirror (equal fractional
    // stops) cannot exploit it: the elected point is common to both sides.
    let pts = workloads::axially_symmetric(4, 0, 7);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .motion(SymmetricHalfStops)
        .frames(FramePolicy::GlobalFrame)
        .build();
    let outcome = engine.run(30_000);
    assert!(outcome.gathered(), "{outcome:?}");
}

#[test]
fn isosceles_triangle_has_an_axis_but_gathers() {
    // The smallest axially symmetric case: an isosceles (non-equilateral)
    // triangle. It is quasi-regular via its Fermat point — chirality is
    // not even needed — but the run must gather regardless.
    let pts = vec![
        Point::new(-2.0, 0.0),
        Point::new(2.0, 0.0),
        Point::new(0.0, 5.0),
    ];
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .build();
    assert!(engine.run(10_000).gathered());
}
