//! **Gated behind `--features external-deps`** (hermetic-build policy,
//! DESIGN.md §8): this suite needs the external `proptest` package, which
//! the default offline profile does not resolve. The same properties are
//! covered by the in-tree seeded-loop tests in `seeded_properties.rs`.
#![cfg(feature = "external-deps")]

//! Property-based tests (proptest) over the public API: the paper's
//! lemmas as universally-quantified statements on random configurations.

use gather_config::{classify, rotational_symmetry, safe_points, Class, Configuration};
use gather_geom::{
    convex_hull, hull_contains, smallest_enclosing_circle, weber_objective, weber_point_weiszfeld,
    Point, Similarity, Tol,
};
use gather_sim::prelude::{Algorithm, Snapshot};
use gathering::WaitFreeGather;
use proptest::prelude::*;

/// Random point with coordinates on a centi-grid in [-10, 10] — the grid
/// keeps configurations away from knife-edge classification boundaries,
/// like every physical deployment would be.
fn arb_point() -> impl Strategy<Value = Point> {
    (-1000i32..1000, -1000i32..1000)
        .prop_map(|(x, y)| Point::new(x as f64 / 100.0, y as f64 / 100.0))
}

/// A configuration of 3..=12 robots with possible co-location (multiset).
fn arb_config() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 3..=12)
}

/// A random orientation-preserving similarity with a benign scale range.
fn arb_similarity() -> impl Strategy<Value = Similarity> {
    (0.0..std::f64::consts::TAU, 0.25f64..4.0, arb_point())
        .prop_map(|(theta, scale, origin)| Similarity::new(theta, scale, origin))
}

fn tol() -> Tol {
    Tol::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn classification_is_total_and_deterministic(pts in arb_config()) {
        let config = Configuration::canonical(pts, tol());
        let a1 = classify(&config, tol());
        let a2 = classify(&config, tol());
        prop_assert_eq!(a1.class, a2.class);
    }

    #[test]
    fn classification_is_similarity_invariant(
        pts in arb_config(),
        sim in arb_similarity(),
    ) {
        let config = Configuration::canonical(pts, tol());
        let moved = Configuration::canonical(
            config.points().iter().map(|p| sim.apply(*p)).collect(),
            tol(),
        );
        let c1 = classify(&config, tol()).class;
        let c2 = classify(&moved, tol()).class;
        prop_assert_eq!(c1, c2, "{} became {} under similarity", c1, c2);
    }

    #[test]
    fn symmetry_is_similarity_invariant(
        pts in arb_config(),
        sim in arb_similarity(),
    ) {
        let config = Configuration::canonical(pts, tol());
        let moved = Configuration::canonical(
            config.points().iter().map(|p| sim.apply(*p)).collect(),
            tol(),
        );
        prop_assert_eq!(
            rotational_symmetry(&config, tol()),
            rotational_symmetry(&moved, tol())
        );
    }

    #[test]
    fn non_linear_configurations_have_safe_points(pts in arb_config()) {
        // Lemma 4.2.
        let config = Configuration::canonical(pts, tol());
        if !config.is_linear(tol()) {
            prop_assert!(!safe_points(&config, tol()).is_empty());
        }
    }

    #[test]
    fn bivalent_and_l2w_have_no_safe_points(pts in arb_config()) {
        // Lemma 4.3 (on whatever random configs land in B or L2W).
        let config = Configuration::canonical(pts, tol());
        let class = classify(&config, tol()).class;
        if class == Class::Bivalent || class == Class::Collinear2W {
            prop_assert!(safe_points(&config, tol()).is_empty());
        }
    }

    #[test]
    fn wfg_destination_is_equivariant(
        pts in arb_config(),
        sim in arb_similarity(),
    ) {
        let config = Configuration::canonical(pts, tol());
        let alg = WaitFreeGather::default();
        for me in config.distinct_points() {
            let d = alg.destination(&Snapshot::new(config.clone(), me));
            let moved = config.map(|p| sim.apply(p));
            let dm = alg.destination(&Snapshot::new(moved, sim.apply(me)));
            // Allow noise proportional to the configuration extent.
            let extent = config.sec().radius.max(1.0) * sim.scale();
            prop_assert!(
                sim.apply(d).dist(dm) <= 1e-4 * extent,
                "equivariance violated at {}: {} vs {}",
                me, sim.apply(d), dm
            );
        }
    }

    #[test]
    fn wfg_moves_everyone_except_at_most_one_location(pts in arb_config()) {
        // Lemma 5.1 (wait-freeness), on random configurations.
        let config = Configuration::canonical(pts, tol());
        let class = classify(&config, tol()).class;
        if class == Class::Bivalent || config.is_gathered() {
            return Ok(());
        }
        let alg = WaitFreeGather::default();
        let mut staying = 0usize;
        for p in config.distinct_points() {
            let d = alg.destination(&Snapshot::new(config.clone(), p));
            if d.within(p, tol().abs) {
                staying += 1;
            }
        }
        prop_assert!(staying <= 1, "{staying} staying locations");
    }

    #[test]
    fn wfg_never_targets_outside_the_hull_by_far(pts in arb_config()) {
        // Sanity: destinations stay within the configuration's geometric
        // footprint (hull inflated by the side-step slack).
        let config = Configuration::canonical(pts, tol());
        let hull = convex_hull(&config.distinct_points());
        let radius = config.sec().radius;
        let alg = WaitFreeGather::default();
        for p in config.distinct_points() {
            let d = alg.destination(&Snapshot::new(config.clone(), p));
            let inflated = Tol::new(1e-9, 1e-9, 2.0 * radius.max(1.0));
            prop_assert!(
                hull_contains(&hull, d, tol())
                    || hull.iter().any(|h| d.within(*h, inflated.snap)),
                "destination {d} far outside the configuration"
            );
        }
    }

    #[test]
    fn sec_contains_all_points_and_is_snug(pts in arb_config()) {
        let distinct = Configuration::canonical(pts, tol()).distinct_points();
        let circle = smallest_enclosing_circle(&distinct);
        for p in &distinct {
            prop_assert!(circle.contains(*p, tol()));
        }
        // Some point is on (or very near) the boundary.
        if distinct.len() > 1 {
            let max_d = distinct
                .iter()
                .map(|p| circle.center.dist(*p))
                .fold(0.0, f64::max);
            prop_assert!((max_d - circle.radius).abs() <= 1e-6 * circle.radius.max(1.0));
        }
    }

    #[test]
    fn weiszfeld_beats_every_input_point(pts in arb_config()) {
        let result = weber_point_weiszfeld(&pts, tol());
        for p in &pts {
            prop_assert!(
                result.objective <= weber_objective(*p, &pts) + 1e-6,
                "Weber objective {} worse than input point {} ({})",
                result.objective, p, weber_objective(*p, &pts)
            );
        }
    }

    #[test]
    fn weber_point_is_invariant_under_contraction(pts in arb_config()) {
        // Lemma 3.2, numerically: move every point halfway to the Weber
        // point; the Weber point stays (within solver noise).
        let config = Configuration::canonical(pts, tol());
        if config.is_linear(tol()) {
            return Ok(()); // linear Weber sets may be intervals
        }
        let w = weber_point_weiszfeld(config.points(), tol()).point;
        let moved: Vec<Point> = config.points().iter().map(|p| p.lerp(w, 0.5)).collect();
        let w2 = weber_point_weiszfeld(&moved, tol()).point;
        let scale = config.sec().radius.max(1.0);
        prop_assert!(w.dist(w2) <= 1e-3 * scale, "Weber drifted {} → {}", w, w2);
    }

    #[test]
    fn hull_contains_every_input_point(pts in arb_config()) {
        let hull = convex_hull(&pts);
        for p in &pts {
            prop_assert!(hull_contains(&hull, *p, tol()));
        }
    }
}
