//! Umbrella crate re-exporting the whole wait-free gathering suite.
pub use gather_config as config;
pub use gather_geom as geom;
pub use gather_sim as sim;
pub use gather_workloads as workloads;
pub use gathering;
